//! Client transports: the same operations over two very different paths.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use u1_auth::Token;
use u1_core::{ContentHash, CoreError, CoreResult, NodeId, NodeKind, SessionId, UserId, VolumeId};
use u1_proto::conn::{ClientConn, ClientEvent};
use u1_proto::msg::{NodeInfo, Push, Request, Response, VolumeInfo};
use u1_proto::tcp;
use u1_server::api::UploadOutcome;
use u1_server::Backend;

/// Result of an upload as the client sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadResult {
    /// The server already had the content: no bytes were sent (§3.3).
    pub deduplicated: bool,
    /// Bytes actually transferred.
    pub bytes_sent: u64,
}

/// The operations a desktop client performs against the service. One
/// transport == one session == one (possibly virtual) connection.
pub trait Transport {
    /// Authenticates and opens the session. Must be called first.
    fn authenticate(&mut self, token: Token) -> CoreResult<(SessionId, UserId)>;
    fn query_set_caps(&mut self, caps: &[&str]) -> CoreResult<()>;
    fn list_volumes(&mut self) -> CoreResult<Vec<VolumeInfo>>;
    fn list_shares(&mut self) -> CoreResult<Vec<VolumeInfo>>;
    fn create_udf(&mut self, name: &str) -> CoreResult<VolumeInfo>;
    fn delete_volume(&mut self, volume: VolumeId) -> CoreResult<()>;
    fn make_node(
        &mut self,
        volume: VolumeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
    ) -> CoreResult<NodeInfo>;
    fn unlink(&mut self, volume: VolumeId, node: NodeId) -> CoreResult<()>;
    fn move_node(
        &mut self,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
    ) -> CoreResult<()>;
    fn get_delta(
        &mut self,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<NodeInfo>)>;
    fn rescan_from_scratch(&mut self, volume: VolumeId) -> CoreResult<(u64, Vec<NodeInfo>)>;
    /// Uploads content for an existing file node. `data` carries real bytes
    /// in live mode; in measurement mode only `size` matters.
    fn upload(
        &mut self,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> CoreResult<UploadResult>;
    fn download(
        &mut self,
        volume: VolumeId,
        node: NodeId,
    ) -> CoreResult<(u64, ContentHash, Option<Vec<u8>>)>;
    /// Pushes received since the last poll.
    fn poll_pushes(&mut self) -> Vec<Push>;
    /// Ends the session.
    fn close(&mut self);
    /// The session id, once authenticated.
    fn session(&self) -> Option<SessionId>;
}

// ---------------------------------------------------------------------------
// Direct (in-process) transport
// ---------------------------------------------------------------------------

/// Calls the backend's handlers directly. Used by the virtual-time workload
/// driver, where thousands of client actors share one process.
pub struct DirectTransport {
    backend: Arc<Backend>,
    session: Option<SessionId>,
    push_rx: Option<crossbeam::channel::Receiver<Push>>,
    /// Register for pushes? Cold clients (crashed/quiet) may skip it.
    subscribe_pushes: bool,
}

impl DirectTransport {
    pub fn new(backend: Arc<Backend>) -> Self {
        Self {
            backend,
            session: None,
            push_rx: None,
            subscribe_pushes: true,
        }
    }

    /// Disables push subscription (for modeling clients that never receive
    /// notifications).
    pub fn without_pushes(mut self) -> Self {
        self.subscribe_pushes = false;
        self
    }

    fn sid(&self) -> CoreResult<SessionId> {
        self.session
            .ok_or_else(|| CoreError::invalid("not authenticated"))
    }
}

impl Transport for DirectTransport {
    fn authenticate(&mut self, token: Token) -> CoreResult<(SessionId, UserId)> {
        let h = self.backend.open_session(token)?;
        if self.subscribe_pushes {
            let (tx, rx) = crossbeam::channel::unbounded();
            self.backend.push_router.register(h.session, tx);
            self.push_rx = Some(rx);
        }
        self.session = Some(h.session);
        Ok((h.session, h.user))
    }

    fn query_set_caps(&mut self, caps: &[&str]) -> CoreResult<()> {
        let sid = self.sid()?;
        self.backend
            .query_set_caps(sid, caps.iter().map(|s| s.to_string()).collect())?;
        Ok(())
    }

    fn list_volumes(&mut self) -> CoreResult<Vec<VolumeInfo>> {
        self.backend.list_volumes(self.sid()?)
    }

    fn list_shares(&mut self) -> CoreResult<Vec<VolumeInfo>> {
        self.backend.list_shares(self.sid()?)
    }

    fn create_udf(&mut self, name: &str) -> CoreResult<VolumeInfo> {
        self.backend.create_udf(self.sid()?, name)
    }

    fn delete_volume(&mut self, volume: VolumeId) -> CoreResult<()> {
        self.backend.delete_volume(self.sid()?, volume)?;
        Ok(())
    }

    fn make_node(
        &mut self,
        volume: VolumeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
    ) -> CoreResult<NodeInfo> {
        self.backend
            .make_node(self.sid()?, volume, parent, kind, name)
    }

    fn unlink(&mut self, volume: VolumeId, node: NodeId) -> CoreResult<()> {
        self.backend.unlink(self.sid()?, volume, node)?;
        Ok(())
    }

    fn move_node(
        &mut self,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
    ) -> CoreResult<()> {
        self.backend
            .move_node(self.sid()?, volume, node, new_parent, new_name)?;
        Ok(())
    }

    fn get_delta(
        &mut self,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<NodeInfo>)> {
        self.backend.get_delta(self.sid()?, volume, from_generation)
    }

    fn rescan_from_scratch(&mut self, volume: VolumeId) -> CoreResult<(u64, Vec<NodeInfo>)> {
        self.backend.rescan_from_scratch(self.sid()?, volume)
    }

    fn upload(
        &mut self,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> CoreResult<UploadResult> {
        let sid = self.sid()?;
        match self.backend.begin_upload(sid, volume, node, hash, size)? {
            UploadOutcome::Deduplicated { .. } => Ok(UploadResult {
                deduplicated: true,
                bytes_sent: 0,
            }),
            UploadOutcome::Started { upload } => {
                let mut remaining = size.max(1);
                let mut offset = 0usize;
                while remaining > 0 {
                    let part = remaining.min(u1_blobstore_part_size());
                    let chunk = data.as_ref().map(|d| {
                        let end = (offset + part as usize).min(d.len());
                        d[offset.min(d.len())..end].to_vec()
                    });
                    self.backend.upload_chunk(sid, upload, part, chunk)?;
                    offset += part as usize;
                    remaining -= part;
                }
                let c = self.backend.commit_upload(sid, upload)?;
                Ok(UploadResult {
                    deduplicated: false,
                    bytes_sent: c.bytes_transferred,
                })
            }
        }
    }

    fn download(
        &mut self,
        volume: VolumeId,
        node: NodeId,
    ) -> CoreResult<(u64, ContentHash, Option<Vec<u8>>)> {
        self.backend.download(self.sid()?, volume, node)
    }

    fn poll_pushes(&mut self) -> Vec<Push> {
        match &self.push_rx {
            Some(rx) => u1_notify::drain(rx),
            None => Vec::new(),
        }
    }

    fn close(&mut self) {
        if let Some(sid) = self.session.take() {
            let _ = self.backend.close_session(sid);
        }
        self.push_rx = None;
    }

    fn session(&self) -> Option<SessionId> {
        self.session
    }
}

fn u1_blobstore_part_size() -> u64 {
    u1_blobstore::PART_SIZE
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A real protocol connection. Requests are issued synchronously (one
/// outstanding request at a time, like the original client's action queue);
/// pushes arriving between responses are buffered for `poll_pushes`.
pub struct TcpTransport {
    stream: TcpStream,
    conn: ClientConn,
    pushes: Vec<Push>,
    session: Option<SessionId>,
    buf: Vec<u8>,
    /// Send `UploadChunkSparse` instead of zero-filled `UploadChunk`s when
    /// the caller provides no content bytes. Only valid against a
    /// measurement-mode server (real-byte servers reject sparse chunks).
    sparse_content: bool,
}

impl TcpTransport {
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        tcp::configure(&stream)?;
        Ok(Self {
            stream,
            conn: ClientConn::new(),
            pushes: Vec::new(),
            session: None,
            buf: vec![0u8; 64 * 1024],
            sparse_content: false,
        })
    }

    /// Switches content-less uploads to the sparse wire path: one
    /// `UploadChunkSparse` per S3 part, mirroring `DirectTransport`'s part
    /// schedule byte-for-byte in the back-end trace without shipping (or
    /// even allocating) filler. Use against measurement-mode servers; a
    /// real-byte server refuses sparse chunks.
    pub fn with_sparse_content(mut self) -> Self {
        self.sparse_content = true;
        self
    }

    /// Sends one request and blocks until its final response, buffering any
    /// pushes and content chunks seen along the way. Returns the list of
    /// responses for this request (1 for ordinary ops, begin/chunks/end for
    /// content streams).
    fn call(&mut self, req: Request) -> CoreResult<Vec<Response>> {
        let (id, bytes) = self
            .conn
            .request(req)
            .map_err(|e| CoreError::invalid(format!("encode: {e}")))?;
        self.stream
            .write_all(&bytes)
            .map_err(|e| CoreError::unavailable(format!("send: {e}")))?;
        let mut responses = Vec::new();
        loop {
            let n = tcp::read_some(&mut self.stream, &mut self.buf)
                .map_err(|e| CoreError::unavailable(format!("recv: {e}")))?;
            if n == 0 {
                return Err(CoreError::unavailable("connection closed"));
            }
            let events = self
                .conn
                .on_bytes(&self.buf[..n])
                .map_err(|e| CoreError::invalid(format!("protocol: {e}")))?;
            for ev in events {
                match ev {
                    ClientEvent::Push(p) => self.pushes.push(p),
                    ClientEvent::Response { id: got, resp } => {
                        if got != id {
                            return Err(CoreError::invalid("response id mismatch"));
                        }
                        let done = resp.is_final();
                        responses.push(resp);
                        if done {
                            return Ok(responses);
                        }
                    }
                }
            }
        }
    }

    /// Unwraps a single expected response, converting protocol errors.
    fn call_one(&mut self, req: Request) -> CoreResult<Response> {
        let mut responses = self.call(req)?;
        let resp = responses
            .pop()
            .ok_or_else(|| CoreError::invalid("no response"))?;
        if let Response::Error { code, message } = &resp {
            return Err(wire_error(code, message.clone()));
        }
        Ok(resp)
    }
}

/// Reconstitutes a typed [`CoreError`] from its wire form, so TCP clients
/// observe the same error kinds as in-process ones.
fn wire_error(code: &str, message: String) -> CoreError {
    match code {
        "not_found" => CoreError::not_found(message),
        "conflict" => CoreError::conflict(message),
        "denied" => CoreError::permission_denied(message),
        "unavailable" => CoreError::unavailable(message),
        _ => CoreError::invalid(message),
    }
}

impl Transport for TcpTransport {
    fn authenticate(&mut self, token: Token) -> CoreResult<(SessionId, UserId)> {
        match self.call_one(Request::Authenticate {
            token: token.as_bytes().to_vec(),
        })? {
            Response::AuthOk { session, user } => {
                self.session = Some(session);
                Ok((session, user))
            }
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn query_set_caps(&mut self, caps: &[&str]) -> CoreResult<()> {
        self.call_one(Request::QuerySetCaps {
            caps: caps.iter().map(|s| s.to_string()).collect(),
        })?;
        Ok(())
    }

    fn list_volumes(&mut self) -> CoreResult<Vec<VolumeInfo>> {
        match self.call_one(Request::ListVolumes)? {
            Response::Volumes { volumes } => Ok(volumes),
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn list_shares(&mut self) -> CoreResult<Vec<VolumeInfo>> {
        match self.call_one(Request::ListShares)? {
            Response::Volumes { volumes } => Ok(volumes),
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn create_udf(&mut self, name: &str) -> CoreResult<VolumeInfo> {
        match self.call_one(Request::CreateUdf { name: name.into() })? {
            Response::VolumeCreated { volume, generation } => Ok(VolumeInfo {
                volume,
                kind: u1_core::VolumeKind::UserDefined,
                generation,
                owner: None,
                node_count: 0,
            }),
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn delete_volume(&mut self, volume: VolumeId) -> CoreResult<()> {
        self.call_one(Request::DeleteVolume { volume })?;
        Ok(())
    }

    fn make_node(
        &mut self,
        volume: VolumeId,
        parent: Option<NodeId>,
        kind: NodeKind,
        name: &str,
    ) -> CoreResult<NodeInfo> {
        let parent_id = parent.unwrap_or(NodeId::new(0));
        let req = match kind {
            NodeKind::File => Request::MakeFile {
                volume,
                parent: parent_id,
                name: name.into(),
            },
            NodeKind::Directory => Request::MakeDir {
                volume,
                parent: parent_id,
                name: name.into(),
            },
        };
        match self.call_one(req)? {
            Response::NodeCreated { node, generation } => Ok(NodeInfo {
                node,
                kind,
                parent,
                name: name.into(),
                size: 0,
                hash: None,
                generation,
                is_dead: false,
            }),
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn unlink(&mut self, volume: VolumeId, node: NodeId) -> CoreResult<()> {
        self.call_one(Request::Unlink { volume, node })?;
        Ok(())
    }

    fn move_node(
        &mut self,
        volume: VolumeId,
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: &str,
    ) -> CoreResult<()> {
        self.call_one(Request::Move {
            volume,
            node,
            new_parent: new_parent.unwrap_or(NodeId::new(0)),
            new_name: new_name.into(),
        })?;
        Ok(())
    }

    fn get_delta(
        &mut self,
        volume: VolumeId,
        from_generation: u64,
    ) -> CoreResult<(u64, Vec<NodeInfo>)> {
        match self.call_one(Request::GetDelta {
            volume,
            from_generation,
        })? {
            Response::Delta {
                generation, nodes, ..
            } => Ok((generation, nodes)),
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn rescan_from_scratch(&mut self, volume: VolumeId) -> CoreResult<(u64, Vec<NodeInfo>)> {
        match self.call_one(Request::RescanFromScratch { volume })? {
            Response::Delta {
                generation, nodes, ..
            } => Ok((generation, nodes)),
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn upload(
        &mut self,
        volume: VolumeId,
        node: NodeId,
        hash: ContentHash,
        size: u64,
        data: Option<Vec<u8>>,
    ) -> CoreResult<UploadResult> {
        match self.call_one(Request::BeginUpload {
            volume,
            node,
            hash,
            size,
        })? {
            Response::UploadDone { .. } => Ok(UploadResult {
                deduplicated: true,
                bytes_sent: 0,
            }),
            Response::UploadBegun { upload, .. } => {
                let mut sent = 0u64;
                if data.is_none() && self.sparse_content {
                    // Measurement mode: declare part lengths without
                    // materializing bytes — the same part schedule as
                    // `DirectTransport` (one `UploadChunkSparse` per S3
                    // part), so both paths produce identical back-end RPC
                    // sequences and trace records.
                    let mut remaining = size.max(1);
                    while remaining > 0 {
                        let part = remaining.min(u1_blobstore_part_size());
                        self.call_one(Request::UploadChunkSparse { upload, len: part })?;
                        sent += part;
                        remaining -= part;
                    }
                } else {
                    // Live bytes (zero filler when the caller names a size
                    // but no content): wire chunks are bounded by the frame
                    // limit, not the S3 part size; 1MB keeps frames
                    // comfortable.
                    let bytes = data.unwrap_or_else(|| vec![0u8; size as usize]);
                    const WIRE_CHUNK: usize = 1024 * 1024;
                    for chunk in bytes.chunks(WIRE_CHUNK.max(1)) {
                        self.call_one(Request::UploadChunk {
                            upload,
                            data: chunk.to_vec(),
                        })?;
                        sent += chunk.len() as u64;
                    }
                    if bytes.is_empty() {
                        self.call_one(Request::UploadChunk {
                            upload,
                            data: vec![0u8],
                        })?;
                        sent += 1;
                    }
                }
                match self.call_one(Request::CommitUpload { upload })? {
                    Response::UploadDone { .. } => Ok(UploadResult {
                        deduplicated: false,
                        bytes_sent: sent,
                    }),
                    other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
                }
            }
            other => Err(CoreError::invalid(format!("unexpected {}", other.label()))),
        }
    }

    fn download(
        &mut self,
        volume: VolumeId,
        node: NodeId,
    ) -> CoreResult<(u64, ContentHash, Option<Vec<u8>>)> {
        let responses = self.call(Request::GetContent { volume, node })?;
        let mut size = 0u64;
        let mut hash = None;
        let mut data = Vec::new();
        let mut chunks_seen = false;
        for resp in responses {
            match resp {
                Response::ContentBegin { size: s, hash: h } => {
                    size = s;
                    hash = Some(h);
                }
                Response::ContentChunk { data: d } => {
                    chunks_seen = true;
                    data.extend_from_slice(&d);
                }
                Response::ContentEnd => {}
                Response::Error { code, message } => return Err(wire_error(&code, message)),
                other => return Err(CoreError::invalid(format!("unexpected {}", other.label()))),
            }
        }
        let hash = hash.ok_or_else(|| CoreError::invalid("missing content header"))?;
        // A chunkless stream with a nonzero declared size is measurement
        // mode: the server accounted the transfer but holds no bytes —
        // mirror `DirectTransport` by reporting `None`.
        let data = if !chunks_seen && size > 0 {
            None
        } else {
            Some(data)
        };
        Ok((size, hash, data))
    }

    fn poll_pushes(&mut self) -> Vec<Push> {
        // Opportunistically read anything already buffered on the socket.
        let _ = self.stream.set_nonblocking(true);
        loop {
            match std::io::Read::read(&mut self.stream, &mut self.buf) {
                Ok(0) => break,
                Ok(n) => {
                    if let Ok(events) = self.conn.on_bytes(&self.buf[..n]) {
                        for ev in events {
                            if let ClientEvent::Push(p) = ev {
                                self.pushes.push(p);
                            }
                        }
                    } else {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let _ = self.stream.set_nonblocking(false);
        std::mem::take(&mut self.pushes)
    }

    fn close(&mut self) {
        // A live session says goodbye and waits for the acknowledgement:
        // the server closes the session *before* answering, so by the time
        // `close` returns the teardown is globally ordered — matching
        // `DirectTransport::close`, whose `close_session` call is
        // synchronous. An unauthenticated connection just disconnects.
        if self.session.take().is_some() {
            let _ = self.call_one(Request::Bye);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn session(&self) -> Option<SessionId> {
        self.session
    }
}
