//! The client-side mirror of a volume and the inotify-like event queue.
//!
//! The real daemon watched `~/Ubuntu One` with inotify and kept sync
//! metadata in `~/.cache/ubuntuone`; here the "filesystem" is an in-memory
//! model (the measurement study needs behavior, not disks), and the
//! metadata is [`LocalVolume`]'s known-generation plus per-node state.

use std::collections::HashMap;
use u1_core::{ContentHash, Name, NodeId, NodeKind, VolumeId};
use u1_proto::msg::NodeInfo;

/// A file or directory as the client knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalFile {
    pub node: NodeId,
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub name: Name,
    pub size: u64,
    pub hash: Option<ContentHash>,
    /// True when the local copy differs from the server's (pending upload).
    pub dirty: bool,
}

/// An inotify-style local change the sync engine must propagate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalEvent {
    /// A file appeared or its content changed (new hash/size).
    FileWritten {
        name: String,
        parent: Option<NodeId>,
        hash: ContentHash,
        size: u64,
    },
    /// A directory appeared.
    DirCreated {
        name: String,
        parent: Option<NodeId>,
    },
    /// A node disappeared locally.
    Removed { node: NodeId },
    /// A node was renamed/moved locally.
    Moved {
        node: NodeId,
        new_parent: Option<NodeId>,
        new_name: String,
    },
}

/// The mirrored state of one volume.
#[derive(Debug, Default)]
pub struct LocalVolume {
    pub volume: VolumeId,
    /// Last server generation fully applied locally (the "generation
    /// point" of §3.4.2).
    pub known_generation: u64,
    nodes: HashMap<NodeId, LocalFile>,
    by_name: HashMap<(Option<NodeId>, Name), NodeId>,
}

impl LocalVolume {
    pub fn new(volume: VolumeId) -> Self {
        Self {
            volume,
            ..Default::default()
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn get(&self, node: NodeId) -> Option<&LocalFile> {
        self.nodes.get(&node)
    }

    pub fn find_by_name(&self, parent: Option<NodeId>, name: &str) -> Option<&LocalFile> {
        self.by_name
            .get(&(parent, Name::new(name)))
            .and_then(|id| self.nodes.get(id))
    }

    pub fn files(&self) -> impl Iterator<Item = &LocalFile> {
        self.nodes.values()
    }

    /// Records a server-known node (post-upload, post-delta).
    pub fn upsert(&mut self, file: LocalFile) {
        self.by_name
            .insert((file.parent, file.name.clone()), file.node);
        self.nodes.insert(file.node, file);
    }

    pub fn remove(&mut self, node: NodeId) -> Option<LocalFile> {
        let file = self.nodes.remove(&node)?;
        self.by_name.remove(&(file.parent, file.name.clone()));
        Some(file)
    }

    /// Applies a server delta (the client's reaction to `GetDelta`),
    /// returning the file nodes whose content changed and should therefore
    /// be downloaded.
    pub fn apply_delta(&mut self, generation: u64, entries: &[NodeInfo]) -> Vec<NodeId> {
        let mut to_download = Vec::new();
        for e in entries {
            if e.is_dead {
                self.remove(e.node);
                continue;
            }
            let changed_content = match self.nodes.get(&e.node) {
                Some(prev) => prev.hash != e.hash,
                None => e.hash.is_some(),
            };
            self.upsert(LocalFile {
                node: e.node,
                kind: e.kind,
                parent: e.parent,
                name: e.name.clone(),
                size: e.size,
                hash: e.hash,
                dirty: false,
            });
            if e.kind == NodeKind::File && changed_content {
                to_download.push(e.node);
            }
        }
        self.known_generation = self.known_generation.max(generation);
        to_download
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(node: u64, name: &str, hash: Option<u64>, gen: u64, dead: bool) -> NodeInfo {
        NodeInfo {
            node: NodeId::new(node),
            kind: NodeKind::File,
            parent: None,
            name: name.into(),
            size: 10,
            hash: hash.map(ContentHash::from_content_id),
            generation: gen,
            is_dead: dead,
        }
    }

    #[test]
    fn apply_delta_tracks_generation_and_downloads() {
        let mut lv = LocalVolume::new(VolumeId::new(1));
        let dl = lv.apply_delta(3, &[info(1, "a.txt", Some(9), 3, false)]);
        assert_eq!(dl, vec![NodeId::new(1)]);
        assert_eq!(lv.known_generation, 3);
        assert_eq!(lv.node_count(), 1);
        // Same hash again: no download.
        let dl = lv.apply_delta(4, &[info(1, "a.txt", Some(9), 4, false)]);
        assert!(dl.is_empty());
        // New hash: download.
        let dl = lv.apply_delta(5, &[info(1, "a.txt", Some(10), 5, false)]);
        assert_eq!(dl, vec![NodeId::new(1)]);
        // Tombstone: removed, nothing to download.
        let dl = lv.apply_delta(6, &[info(1, "a.txt", Some(10), 6, true)]);
        assert!(dl.is_empty());
        assert_eq!(lv.node_count(), 0);
    }

    #[test]
    fn name_index_follows_upserts_and_removes() {
        let mut lv = LocalVolume::new(VolumeId::new(1));
        lv.upsert(LocalFile {
            node: NodeId::new(1),
            kind: NodeKind::File,
            parent: None,
            name: "x".into(),
            size: 0,
            hash: None,
            dirty: true,
        });
        assert!(lv.find_by_name(None, "x").is_some());
        lv.remove(NodeId::new(1));
        assert!(lv.find_by_name(None, "x").is_none());
    }

    #[test]
    fn delta_generation_never_regresses() {
        let mut lv = LocalVolume::new(VolumeId::new(1));
        lv.apply_delta(10, &[]);
        lv.apply_delta(5, &[]);
        assert_eq!(lv.known_generation, 10);
    }

    #[test]
    fn files_created_without_hash_are_not_downloaded() {
        let mut lv = LocalVolume::new(VolumeId::new(1));
        let mut e = info(2, "empty.txt", None, 1, false);
        e.hash = None;
        let dl = lv.apply_delta(1, &[e]);
        assert!(dl.is_empty(), "no content yet, nothing to download");
    }
}
