//! The sync engine: the daemon logic that "does the work of deciding what
//! to synchronize and in which direction to do so" (§3.3).
//!
//! Outbound: local events become Make/Upload/Unlink/Move operations. The
//! client hashes content first so the server can deduplicate; there are no
//! delta updates — a changed file is re-uploaded in full, which is exactly
//! the §5.1 finding (file updates caused 18.5% of upload traffic).
//!
//! Inbound: pushes trigger `GetDelta` from the last known generation, the
//! delta is applied to the local mirror, and changed files are downloaded
//! (no sync deferment — every intermediate version is fetched, §5.2).

use crate::localfs::{LocalEvent, LocalFile, LocalVolume};
use crate::transport::Transport;
use std::collections::HashMap;
use u1_auth::Token;
use u1_core::{CoreResult, NodeKind, SessionId, UserId, VolumeId};
use u1_proto::msg::Push;

/// Counters of what the engine has done — per client, the client-side dual
/// of the server's trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncStats {
    pub uploads: u64,
    pub uploads_deduplicated: u64,
    pub bytes_uploaded: u64,
    pub downloads: u64,
    pub bytes_downloaded: u64,
    pub unlinks: u64,
    pub moves: u64,
    pub makes: u64,
    pub deltas: u64,
    pub pushes_handled: u64,
}

/// A syncing desktop client over any transport.
pub struct SyncEngine<T: Transport> {
    transport: T,
    pub session: Option<SessionId>,
    pub user: Option<UserId>,
    volumes: HashMap<VolumeId, LocalVolume>,
    root: Option<VolumeId>,
    pub stats: SyncStats,
}

impl<T: Transport> SyncEngine<T> {
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            session: None,
            user: None,
            volumes: HashMap::new(),
            root: None,
            stats: SyncStats::default(),
        }
    }

    pub fn transport(&mut self) -> &mut T {
        &mut self.transport
    }

    pub fn root_volume(&self) -> Option<VolumeId> {
        self.root
    }

    pub fn volume(&self, v: VolumeId) -> Option<&LocalVolume> {
        self.volumes.get(&v)
    }

    /// Connects: Authenticate → QuerySetCaps → ListVolumes → ListShares —
    /// the Fig. 8 startup flow — then brings every volume up to date.
    pub fn connect(&mut self, token: Token) -> CoreResult<()> {
        let (session, user) = self.transport.authenticate(token)?;
        self.session = Some(session);
        self.user = Some(user);
        self.transport
            .query_set_caps(&["volumes", "generations", "dedup"])?;
        let vols = self.transport.list_volumes()?;
        let _ = self.transport.list_shares()?;
        for v in &vols {
            let lv = self
                .volumes
                .entry(v.volume)
                .or_insert_with(|| LocalVolume::new(v.volume));
            if v.kind == u1_core::VolumeKind::Root {
                self.root = Some(v.volume);
            }
            // Catch up from the generation point.
            let from = lv.known_generation;
            let (generation, entries) = self.transport.get_delta(v.volume, from)?;
            self.stats.deltas += 1;
            let downloads = lv.apply_delta(generation, &entries);
            for node in downloads {
                if let Ok((size, _hash, _data)) = self.transport.download(v.volume, node) {
                    self.stats.downloads += 1;
                    self.stats.bytes_downloaded += size;
                }
            }
        }
        Ok(())
    }

    /// Reacts to one local filesystem event.
    pub fn handle_local_event(&mut self, volume: VolumeId, event: LocalEvent) -> CoreResult<()> {
        match event {
            LocalEvent::DirCreated { name, parent } => {
                let info = self
                    .transport
                    .make_node(volume, parent, NodeKind::Directory, &name)?;
                self.stats.makes += 1;
                self.local(volume).upsert(LocalFile {
                    node: info.node,
                    kind: NodeKind::Directory,
                    parent,
                    name: name.into(),
                    size: 0,
                    hash: None,
                    dirty: false,
                });
                Ok(())
            }
            LocalEvent::FileWritten {
                name,
                parent,
                hash,
                size,
            } => {
                // Reuse the node if the file is already known (an update),
                // else Make first (Fig. 8: Make precedes Upload).
                let existing = self
                    .local(volume)
                    .find_by_name(parent, &name)
                    .map(|f| f.node);
                let node = match existing {
                    Some(node) => node,
                    None => {
                        let info =
                            self.transport
                                .make_node(volume, parent, NodeKind::File, &name)?;
                        self.stats.makes += 1;
                        info.node
                    }
                };
                let result = self.transport.upload(volume, node, hash, size, None)?;
                self.stats.uploads += 1;
                if result.deduplicated {
                    self.stats.uploads_deduplicated += 1;
                }
                self.stats.bytes_uploaded += result.bytes_sent;
                self.local(volume).upsert(LocalFile {
                    node,
                    kind: NodeKind::File,
                    parent,
                    name: name.into(),
                    size,
                    hash: Some(hash),
                    dirty: false,
                });
                Ok(())
            }
            LocalEvent::Removed { node } => {
                self.transport.unlink(volume, node)?;
                self.stats.unlinks += 1;
                self.local(volume).remove(node);
                Ok(())
            }
            LocalEvent::Moved {
                node,
                new_parent,
                new_name,
            } => {
                self.transport
                    .move_node(volume, node, new_parent, &new_name)?;
                self.stats.moves += 1;
                if let Some(mut f) = self.local(volume).remove(node) {
                    f.parent = new_parent;
                    f.name = new_name.into();
                    self.local(volume).upsert(f);
                }
                Ok(())
            }
        }
    }

    /// Drains pending pushes and reacts to each: `GetDelta`, apply, and
    /// download changed content.
    pub fn handle_pushes(&mut self) -> CoreResult<()> {
        for push in self.transport.poll_pushes() {
            self.stats.pushes_handled += 1;
            match push {
                Push::VolumeChanged { volume, generation } => {
                    let known = self.local(volume).known_generation;
                    if generation <= known {
                        continue;
                    }
                    let (generation, entries) = self.transport.get_delta(volume, known)?;
                    self.stats.deltas += 1;
                    let downloads = self.local(volume).apply_delta(generation, &entries);
                    for node in downloads {
                        if let Ok((size, _hash, _data)) = self.transport.download(volume, node) {
                            self.stats.downloads += 1;
                            self.stats.bytes_downloaded += size;
                        }
                    }
                }
                Push::VolumeCreated { volume, .. } => {
                    let lv = self.local(volume);
                    let from = lv.known_generation;
                    let (generation, entries) = self.transport.get_delta(volume, from)?;
                    self.stats.deltas += 1;
                    self.local(volume).apply_delta(generation, &entries);
                }
                Push::VolumeDeleted { volume } => {
                    self.volumes.remove(&volume);
                }
            }
        }
        Ok(())
    }

    /// Disconnects (the session dies with the connection).
    pub fn disconnect(&mut self) {
        self.transport.close();
        self.session = None;
    }

    fn local(&mut self, volume: VolumeId) -> &mut LocalVolume {
        self.volumes
            .entry(volume)
            .or_insert_with(|| LocalVolume::new(volume))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::DirectTransport;
    use std::sync::Arc;
    use u1_core::{ContentHash, SimClock};
    use u1_server::{Backend, BackendConfig};
    use u1_trace::MemorySink;

    fn backend() -> Arc<Backend> {
        let cfg = BackendConfig {
            auth: u1_auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            ..Default::default()
        };
        Arc::new(Backend::new(
            cfg,
            Arc::new(SimClock::new()),
            Arc::new(MemorySink::new()),
        ))
    }

    fn engine(backend: &Arc<Backend>, user: u64) -> (SyncEngine<DirectTransport>, Token) {
        let token = backend.register_user(UserId::new(user));
        (
            SyncEngine::new(DirectTransport::new(Arc::clone(backend))),
            token,
        )
    }

    #[test]
    fn connect_runs_startup_flow() {
        let b = backend();
        let (mut eng, token) = engine(&b, 1);
        eng.connect(token).unwrap();
        assert!(eng.session.is_some());
        assert!(eng.root_volume().is_some());
        assert_eq!(eng.stats.deltas, 1);
    }

    #[test]
    fn local_write_becomes_make_plus_upload_and_update_reuses_node() {
        let b = backend();
        let (mut eng, token) = engine(&b, 1);
        eng.connect(token).unwrap();
        let root = eng.root_volume().unwrap();
        eng.handle_local_event(
            root,
            LocalEvent::FileWritten {
                name: "notes.txt".into(),
                parent: None,
                hash: ContentHash::from_content_id(1),
                size: 1000,
            },
        )
        .unwrap();
        assert_eq!(eng.stats.makes, 1);
        assert_eq!(eng.stats.uploads, 1);
        // Update: same name, new content — no new Make (no delta updates:
        // full re-upload).
        eng.handle_local_event(
            root,
            LocalEvent::FileWritten {
                name: "notes.txt".into(),
                parent: None,
                hash: ContentHash::from_content_id(2),
                size: 1100,
            },
        )
        .unwrap();
        assert_eq!(eng.stats.makes, 1, "update reuses the node");
        assert_eq!(eng.stats.uploads, 2);
        assert_eq!(eng.stats.bytes_uploaded, 2100, "full re-upload both times");
        assert_eq!(eng.volume(root).unwrap().node_count(), 1);
    }

    #[test]
    fn two_devices_converge_via_push_and_delta() {
        let b = backend();
        let token = b.register_user(UserId::new(1));
        let mut dev1 = SyncEngine::new(DirectTransport::new(Arc::clone(&b)));
        let mut dev2 = SyncEngine::new(DirectTransport::new(Arc::clone(&b)));
        dev1.connect(token).unwrap();
        dev2.connect(token).unwrap();
        let root = dev1.root_volume().unwrap();

        dev1.handle_local_event(
            root,
            LocalEvent::FileWritten {
                name: "shared.pdf".into(),
                parent: None,
                hash: ContentHash::from_content_id(42),
                size: 5000,
            },
        )
        .unwrap();
        b.pump_broker();
        dev2.handle_pushes().unwrap();
        // Make and Upload each pushed a VolumeChanged.
        assert_eq!(dev2.stats.pushes_handled, 2);
        assert_eq!(dev2.stats.downloads, 1);
        assert_eq!(dev2.stats.bytes_downloaded, 5000);
        let mirrored = dev2.volume(root).unwrap().find_by_name(None, "shared.pdf");
        assert!(mirrored.is_some());
        assert_eq!(
            mirrored.unwrap().hash,
            Some(ContentHash::from_content_id(42))
        );
    }

    #[test]
    fn removal_propagates_to_other_device() {
        let b = backend();
        let token = b.register_user(UserId::new(1));
        let mut dev1 = SyncEngine::new(DirectTransport::new(Arc::clone(&b)));
        let mut dev2 = SyncEngine::new(DirectTransport::new(Arc::clone(&b)));
        dev1.connect(token).unwrap();
        dev2.connect(token).unwrap();
        let root = dev1.root_volume().unwrap();
        dev1.handle_local_event(
            root,
            LocalEvent::FileWritten {
                name: "temp.bin".into(),
                parent: None,
                hash: ContentHash::from_content_id(9),
                size: 100,
            },
        )
        .unwrap();
        b.pump_broker();
        dev2.handle_pushes().unwrap();
        let node = dev2
            .volume(root)
            .unwrap()
            .find_by_name(None, "temp.bin")
            .unwrap()
            .node;

        dev1.handle_local_event(root, LocalEvent::Removed { node })
            .unwrap();
        b.pump_broker();
        dev2.handle_pushes().unwrap();
        assert!(dev2
            .volume(root)
            .unwrap()
            .find_by_name(None, "temp.bin")
            .is_none());
    }

    #[test]
    fn identical_content_across_users_deduplicates() {
        let b = backend();
        let (mut alice, ta) = engine(&b, 1);
        let (mut bob, tb) = engine(&b, 2);
        alice.connect(ta).unwrap();
        bob.connect(tb).unwrap();
        let ra = alice.root_volume().unwrap();
        let rb = bob.root_volume().unwrap();
        let hash = ContentHash::from_content_id(1234);
        alice
            .handle_local_event(
                ra,
                LocalEvent::FileWritten {
                    name: "song.mp3".into(),
                    parent: None,
                    hash,
                    size: 4_000_000,
                },
            )
            .unwrap();
        bob.handle_local_event(
            rb,
            LocalEvent::FileWritten {
                name: "track01.mp3".into(),
                parent: None,
                hash,
                size: 4_000_000,
            },
        )
        .unwrap();
        assert_eq!(alice.stats.uploads_deduplicated, 0);
        assert_eq!(bob.stats.uploads_deduplicated, 1);
        assert_eq!(bob.stats.bytes_uploaded, 0);
    }
}
