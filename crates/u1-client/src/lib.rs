//! The U1 desktop client (§3.3), reproduced as a library.
//!
//! The real client was a Python daemon that watched `~/Ubuntu One` with
//! inotify, kept sync metadata in `~/.cache/ubuntuone`, held a persistent
//! TCP connection for pushes, hashed every file with SHA-1 before upload
//! (server-side dedup), compressed transfers, and — deliberately — did
//! **not** implement delta updates, file bundling or sync deferment, which
//! the paper repeatedly calls out as a source of overhead (§3.3, §5.1).
//!
//! Layers:
//!
//! * [`transport`] — how a client reaches the service: [`DirectTransport`]
//!   (in-process, virtual-time measurement mode) or [`TcpTransport`] (a real
//!   protocol connection, live mode). Both expose the same [`Transport`]
//!   trait, so the sync engine is oblivious to the wire.
//! * [`localfs`] — the client-side mirror of each volume and the
//!   inotify-like local event queue.
//! * [`sync`] — the sync engine: reacts to local events by uploading /
//!   unlinking, and to server pushes by fetching deltas and downloading.

pub mod localfs;
pub mod sync;
pub mod transport;

pub use localfs::{LocalEvent, LocalFile, LocalVolume};
pub use sync::{SyncEngine, SyncStats};
pub use transport::{DirectTransport, TcpTransport, Transport, UploadResult};
