//! Fixture: seeded U1L002 violation (line 4; line 8 mask-exempt, line 12 suppressed).

fn read_len(v: u64) -> usize {
    v as usize
}

fn tag_of(v: u64) -> u8 {
    (v & 0xFF) as u8
}

fn small(v: u64) -> u16 {
    v as u16 // u1-lint: allow(no-truncating-cast) — fixture: suppressed via slug
}
