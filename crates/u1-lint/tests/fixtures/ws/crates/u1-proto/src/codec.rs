//! Fixture codec: encodes every variant, forgets `Push::ShareCreated` on decode.

fn put_request(r: &Request) {
    match r {
        Request::Ping => {}
    }
}

fn get_request(tag: u8) -> Request {
    Request::Ping
}

fn put_response(r: &Response) {
    match r {
        Response::Pong => {}
    }
}

fn get_response(tag: u8) -> Response {
    Response::Pong
}

fn put_push(p: &Push) {
    match p {
        Push::NodeChanged => {}
        Push::ShareCreated => {}
    }
}

fn get_push(tag: u8) -> Push {
    Push::NodeChanged
}
