//! Fixture: `Push::ShareCreated` (line 13) is missing from the decode path.

pub enum Request {
    Ping,
}

pub enum Response {
    Pong,
}

pub enum Push {
    NodeChanged,
    ShareCreated,
}
