//! Seeded U1L006/U1L007 fixtures: one lock-order inversion and one guard
//! held across stream I/O, next to consistently-ordered / early-released
//! twins that must stay silent.

pub struct Stripes {
    index: Mutex<u64>,
    journal: Mutex<u64>,
}

impl Stripes {
    pub fn fwd(&self) -> u64 {
        let g = self.index.lock();
        let h = self.journal.lock();
        *g + *h
    }

    pub fn rev(&self) -> u64 {
        let g = self.journal.lock();
        let h = self.index.lock();
        *g + *h
    }

    pub fn held_across_io(&self, out: &mut TcpWriter, bytes: &[u8]) -> bool {
        let g = self.index.lock();
        let ok = out.write_all(bytes).is_ok();
        ok && *g > 0
    }

    pub fn released_before_io(&self, out: &mut TcpWriter, bytes: &[u8]) -> bool {
        let n = self.index.lock().wrapping_add(1);
        out.write_all(bytes).is_ok() && n > 0
    }
}

pub struct Ordered {
    head: Mutex<u64>,
    tail: Mutex<u64>,
}

impl Ordered {
    pub fn one(&self) -> u64 {
        let g = self.head.lock();
        let h = self.tail.lock();
        *g + *h
    }

    pub fn two(&self) -> u64 {
        let g = self.head.lock();
        let h = self.tail.lock();
        *g - *h
    }
}
