//! Fixture: seeded U1L005 violation (line 4); epsilon comparison is exempt.

fn gini_is_zero(g: f64) -> bool {
    g == 0.0
}

fn nearly(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
