//! Seeded U1L008 fixtures: hash-ordered iteration feeding the report
//! through the call graph (must flag) beside an off-path probe and a
//! BTreeMap twin (must not flag).

pub struct EngineReport {
    pub rows: Vec<u64>,
}

pub fn tally(counts: &HashMap<u32, u64>) -> usize {
    let mut rows = Vec::new();
    for (_, v) in counts.iter() {
        rows.push(*v);
    }
    build_report(rows)
}

fn build_report(rows: Vec<u64>) -> usize {
    let report = EngineReport { rows };
    report.rows.len()
}

pub fn probe(counts: &HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in counts.iter() {
        total += *v;
    }
    total
}

pub fn tally_sorted(counts: &BTreeMap<u32, u64>) -> usize {
    let mut rows = Vec::new();
    for (_, v) in counts.iter() {
        rows.push(*v);
    }
    build_report(rows)
}
