//! Fixture: seeded U1L001 violations (lines 4, 5, 7; line 9 suppressed).

fn serve(conn: Conn) {
    let frame = conn.recv().unwrap();
    let row = lookup(frame).expect("row exists");
    if row.bad() {
        panic!("corrupt row");
    }
    let ok = checked(row).unwrap(); // u1-lint: allow(U1L001) — fixture: justified exception
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        build().unwrap();
    }
}
