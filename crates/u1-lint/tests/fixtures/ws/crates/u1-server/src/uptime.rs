//! Seeded U1L008 entropy fixture: wall clock outside the allow-list.

pub fn uptime_ms(epoch: u64) -> u64 {
    let t = SystemTime::now().as_millis_since(epoch);
    t
}
