//! u1-bench is on the U1L008 entropy allow-list: wall-clock timings here
//! are measurements, not simulation inputs, and must not flag.

pub fn wall_ms(epoch: u64) -> u64 {
    let t = SystemTime::now().as_millis_since(epoch);
    t
}
