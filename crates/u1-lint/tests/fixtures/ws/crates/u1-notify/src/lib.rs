//! Fixture: seeded U1L004 violations (lines 4 and 5); sync fn is exempt.

async fn deliver(q: &Queue) {
    std::thread::sleep(poll_interval());
    let lock = std::sync::Mutex::new(0u32);
    q.flush().await;
}

fn sync_retry() {
    std::thread::sleep(backoff());
}
