//! End-to-end tests over the seeded fixture workspace in
//! `tests/fixtures/ws/`: exact rule IDs and line numbers, escape-hatch
//! suppression, and the CLI's exit-code / JSON / baseline contracts.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn findings() -> Vec<u1_lint::diag::Finding> {
    u1_lint::analyze_workspace(&fixture_root()).expect("fixture workspace readable")
}

#[test]
fn seeded_violations_are_found_at_exact_locations() {
    let got: Vec<(String, String, usize)> = findings()
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.line))
        .collect();
    let want: Vec<(String, String, usize)> = [
        ("U1L001", "crates/u1-server/src/handler.rs", 4),
        ("U1L001", "crates/u1-server/src/handler.rs", 5),
        ("U1L001", "crates/u1-server/src/handler.rs", 7),
        ("U1L002", "crates/u1-proto/src/wire.rs", 4),
        ("U1L003", "crates/u1-proto/src/msg.rs", 13),
        ("U1L004", "crates/u1-notify/src/lib.rs", 4),
        ("U1L004", "crates/u1-notify/src/lib.rs", 5),
        ("U1L005", "crates/u1-analytics/src/stats.rs", 4),
        ("U1L006", "crates/u1-metastore/src/locks.rs", 13),
        ("U1L007", "crates/u1-metastore/src/locks.rs", 25),
        ("U1L008", "crates/u1-analytics/src/rollup.rs", 11),
        ("U1L008", "crates/u1-server/src/uptime.rs", 4),
    ]
    .iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), *l))
    .collect();
    let mut got_sorted = got.clone();
    got_sorted.sort();
    let mut want_sorted = want;
    want_sorted.sort();
    assert_eq!(got_sorted, want_sorted, "full findings: {got:#?}");
}

#[test]
fn escape_hatch_suppresses_by_id_and_slug() {
    // handler.rs:9 carries `allow(U1L001)`, wire.rs:12 `allow(no-truncating-cast)`;
    // neither may appear even though both lines violate their rule.
    for f in findings() {
        assert!(
            !(f.path.ends_with("handler.rs") && f.line == 9),
            "suppressed unwrap reported: {f:?}"
        );
        assert!(
            !(f.path.ends_with("wire.rs") && f.line == 12),
            "suppressed cast reported: {f:?}"
        );
    }
}

#[test]
fn missing_decode_arm_names_both_enum_and_path() {
    let f = findings()
        .into_iter()
        .find(|f| f.rule == "U1L003")
        .expect("U1L003 finding");
    assert!(f.message.contains("Push::ShareCreated"), "{}", f.message);
    assert!(f.message.contains("decode path"), "{}", f.message);
}

#[test]
fn cli_exits_nonzero_on_fixture_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/u1-lint-baseline.txt"])
        .output()
        .expect("run u1-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[U1L001]"), "{stdout}");
    assert!(stdout.contains("handler.rs:4"), "{stdout}");
}

#[test]
fn cli_json_mode_emits_one_object_per_finding() {
    let out = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--json", "--root"])
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/u1-lint-baseline.txt"])
        .output()
        .expect("run u1-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 12, "{stdout}");
    for line in lines {
        assert!(line.starts_with("{\"rule\":\"U1L"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        // Uniform shape: every object carries the full key set, snippet
        // included, so CI consumers never need per-rule special cases.
        for key in [
            "\"rule\":",
            "\"slug\":",
            "\"path\":",
            "\"line\":",
            "\"col\":",
            "\"message\":",
            "\"snippet\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}

#[test]
fn new_rules_report_expected_shapes() {
    let all = findings();
    let lock = all
        .iter()
        .find(|f| f.rule == "U1L006")
        .expect("U1L006 finding");
    assert!(
        lock.message
            .contains("u1-metastore/index -> u1-metastore/journal -> u1-metastore/index"),
        "{}",
        lock.message
    );
    assert!(lock.message.contains("locks.rs:13"), "{}", lock.message);
    assert!(lock.message.contains("locks.rs:19"), "{}", lock.message);

    let guard = all
        .iter()
        .find(|f| f.rule == "U1L007")
        .expect("U1L007 finding");
    assert!(guard.message.contains("guard `g`"), "{}", guard.message);
    assert!(guard.message.contains("stream I/O"), "{}", guard.message);

    let iter = all
        .iter()
        .find(|f| f.rule == "U1L008" && f.path.ends_with("rollup.rs"))
        .expect("U1L008 iteration finding");
    assert!(
        iter.message.contains("tally -> build_report"),
        "witness path missing: {}",
        iter.message
    );
}

#[test]
fn cli_exits_nonzero_on_stale_baseline_entries() {
    let baseline =
        std::env::temp_dir().join(format!("u1-lint-fixture-stale-{}.txt", std::process::id()));
    // Full baseline plus one entry that matches nothing: everything is
    // grandfathered, but the stale entry alone must fail the check.
    let write = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["baseline", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run u1-lint baseline");
    assert!(write.status.success());
    let mut content = std::fs::read_to_string(&baseline).expect("baseline readable");
    content.push_str("U1L001|crates/u1-server/src/gone.rs|let x = y.unwrap();\n");
    std::fs::write(&baseline, content).expect("baseline writable");

    let check = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run u1-lint check");
    let _ = std::fs::remove_file(&baseline);
    assert_eq!(check.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(stderr.contains("stale baseline entry"), "{stderr}");
    assert!(stderr.contains("gone.rs"), "{stderr}");
}

#[test]
fn cli_lock_graph_flag_writes_artifact() {
    let graph = std::env::temp_dir().join(format!(
        "u1-lint-fixture-lock-graph-{}.json",
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/u1-lint-baseline.txt"])
        .arg("--lock-graph")
        .arg(&graph)
        .output()
        .expect("run u1-lint");
    assert_eq!(out.status.code(), Some(1), "findings still fail the check");
    let json = std::fs::read_to_string(&graph).expect("lock graph written");
    let _ = std::fs::remove_file(&graph);
    // The graph is exported even though only one cycle exists: consistent
    // `head -> tail` edges from the Ordered fixture appear as plain edges.
    assert!(json.contains("\"u1-metastore/index\""), "{json}");
    assert!(json.contains("\"u1-metastore/head\""), "{json}");
    assert!(
        json.contains("[\"u1-metastore/index\", \"u1-metastore/journal\", \"u1-metastore/index\"]"),
        "{json}"
    );
}

#[test]
fn cli_baseline_round_trip_silences_check() {
    let baseline = std::env::temp_dir().join(format!(
        "u1-lint-fixture-baseline-{}.txt",
        std::process::id()
    ));
    let write = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["baseline", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run u1-lint baseline");
    assert!(write.status.success());

    let check = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run u1-lint check");
    let _ = std::fs::remove_file(&baseline);
    assert_eq!(
        check.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&check.stdout),
        String::from_utf8_lossy(&check.stderr)
    );
}
