//! End-to-end tests over the seeded fixture workspace in
//! `tests/fixtures/ws/`: exact rule IDs and line numbers, escape-hatch
//! suppression, and the CLI's exit-code / JSON / baseline contracts.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn findings() -> Vec<u1_lint::diag::Finding> {
    u1_lint::analyze_workspace(&fixture_root()).expect("fixture workspace readable")
}

#[test]
fn seeded_violations_are_found_at_exact_locations() {
    let got: Vec<(String, String, usize)> = findings()
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.line))
        .collect();
    let want: Vec<(String, String, usize)> = [
        ("U1L001", "crates/u1-server/src/handler.rs", 4),
        ("U1L001", "crates/u1-server/src/handler.rs", 5),
        ("U1L001", "crates/u1-server/src/handler.rs", 7),
        ("U1L002", "crates/u1-proto/src/wire.rs", 4),
        ("U1L003", "crates/u1-proto/src/msg.rs", 13),
        ("U1L004", "crates/u1-notify/src/lib.rs", 4),
        ("U1L004", "crates/u1-notify/src/lib.rs", 5),
        ("U1L005", "crates/u1-analytics/src/stats.rs", 4),
    ]
    .iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), *l))
    .collect();
    let mut got_sorted = got.clone();
    got_sorted.sort();
    let mut want_sorted = want;
    want_sorted.sort();
    assert_eq!(got_sorted, want_sorted, "full findings: {got:#?}");
}

#[test]
fn escape_hatch_suppresses_by_id_and_slug() {
    // handler.rs:9 carries `allow(U1L001)`, wire.rs:12 `allow(no-truncating-cast)`;
    // neither may appear even though both lines violate their rule.
    for f in findings() {
        assert!(
            !(f.path.ends_with("handler.rs") && f.line == 9),
            "suppressed unwrap reported: {f:?}"
        );
        assert!(
            !(f.path.ends_with("wire.rs") && f.line == 12),
            "suppressed cast reported: {f:?}"
        );
    }
}

#[test]
fn missing_decode_arm_names_both_enum_and_path() {
    let f = findings()
        .into_iter()
        .find(|f| f.rule == "U1L003")
        .expect("U1L003 finding");
    assert!(f.message.contains("Push::ShareCreated"), "{}", f.message);
    assert!(f.message.contains("decode path"), "{}", f.message);
}

#[test]
fn cli_exits_nonzero_on_fixture_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/u1-lint-baseline.txt"])
        .output()
        .expect("run u1-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[U1L001]"), "{stdout}");
    assert!(stdout.contains("handler.rs:4"), "{stdout}");
}

#[test]
fn cli_json_mode_emits_one_object_per_finding() {
    let out = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--json", "--root"])
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/u1-lint-baseline.txt"])
        .output()
        .expect("run u1-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "{stdout}");
    for line in lines {
        assert!(line.starts_with("{\"rule\":\"U1L"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}

#[test]
fn cli_baseline_round_trip_silences_check() {
    let baseline = std::env::temp_dir().join(format!(
        "u1-lint-fixture-baseline-{}.txt",
        std::process::id()
    ));
    let write = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["baseline", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run u1-lint baseline");
    assert!(write.status.success());

    let check = Command::new(env!("CARGO_BIN_EXE_u1-lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run u1-lint check");
    let _ = std::fs::remove_file(&baseline);
    assert_eq!(
        check.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&check.stdout),
        String::from_utf8_lossy(&check.stderr)
    );
}
