//! Baseline handling for incremental burn-down.
//!
//! The baseline is a plain-text file, one entry per grandfathered
//! violation, keyed `rule|path|trimmed-line-text`. Keys are line-number
//! free so edits elsewhere in a file do not churn the baseline; duplicate
//! keys are counted as a multiset, so two identical `x.unwrap();` lines in
//! one file need two entries. `check` fails only on findings not covered
//! here, and reports entries that no longer match anything so they can be
//! deleted as violations are fixed.

use crate::diag::Finding;
use std::collections::HashMap;
use std::path::Path;

#[derive(Debug, Default)]
pub struct Baseline {
    /// key → allowed count.
    entries: HashMap<String, usize>,
}

/// The result of matching findings against a baseline.
#[derive(Debug, Default)]
pub struct MatchOutcome {
    /// Findings not covered by the baseline: these fail the build.
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline keys that matched nothing: fixed violations whose entries
    /// should be removed (with their leftover counts).
    pub stale: Vec<(String, usize)>,
}

impl Baseline {
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        let mut entries = HashMap::new();
        if path.exists() {
            for line in std::fs::read_to_string(path)?.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                *entries.entry(line.to_string()).or_insert(0) += 1;
            }
        }
        Ok(Baseline { entries })
    }

    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits findings into new vs. baselined and reports stale entries.
    pub fn matches(&self, findings: Vec<Finding>) -> MatchOutcome {
        let mut remaining = self.entries.clone();
        let mut outcome = MatchOutcome::default();
        for f in findings {
            match remaining.get_mut(&f.baseline_key()) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    outcome.baselined.push(f);
                }
                _ => outcome.new.push(f),
            }
        }
        outcome.stale = remaining.into_iter().filter(|(_, n)| *n > 0).collect();
        outcome.stale.sort();
        outcome
    }

    /// Serializes findings as a fresh baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut keys: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
        keys.sort();
        let mut out = String::from(
            "# u1-lint baseline: grandfathered violations, one per line, keyed\n\
             # rule|path|trimmed-line-text. Regenerate with `cargo run -p u1-lint -- baseline`.\n\
             # Delete entries as violations are fixed; `check` reports stale ones.\n",
        );
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, text: &str, line: usize) -> Finding {
        Finding {
            rule,
            slug: "slug",
            path: path.into(),
            line,
            col: 1,
            message: "m".into(),
            line_text: text.into(),
        }
    }

    fn baseline_of(findings: &[Finding]) -> Baseline {
        let mut entries = HashMap::new();
        for f in findings {
            *entries.entry(f.baseline_key()).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    #[test]
    fn multiset_semantics() {
        // Two identical lines baselined; three occurrences now → one new.
        let grandfathered = vec![
            finding("U1L001", "a.rs", "x.unwrap();", 5),
            finding("U1L001", "a.rs", "x.unwrap();", 9),
        ];
        let baseline = baseline_of(&grandfathered);
        let now = vec![
            finding("U1L001", "a.rs", "x.unwrap();", 5),
            finding("U1L001", "a.rs", "x.unwrap();", 9),
            finding("U1L001", "a.rs", "x.unwrap();", 40),
        ];
        let outcome = baseline.matches(now);
        assert_eq!(outcome.baselined.len(), 2);
        assert_eq!(outcome.new.len(), 1);
        assert!(outcome.stale.is_empty());
    }

    #[test]
    fn line_drift_does_not_invalidate() {
        let baseline = baseline_of(&[finding("U1L001", "a.rs", "x.unwrap();", 5)]);
        let outcome = baseline.matches(vec![finding("U1L001", "a.rs", "x.unwrap();", 300)]);
        assert!(outcome.new.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let baseline = baseline_of(&[finding("U1L002", "b.rs", "n as u32", 7)]);
        let outcome = baseline.matches(vec![]);
        assert_eq!(outcome.stale, vec![("U1L002|b.rs|n as u32".to_string(), 1)]);
    }

    #[test]
    fn render_then_load_round_trip() {
        let findings = vec![
            finding("U1L001", "a.rs", "x.unwrap();", 5),
            finding("U1L005", "c.rs", "a == 0.0", 2),
        ];
        let rendered = Baseline::render(&findings);
        let dir = std::env::temp_dir().join("u1-lint-baseline-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("baseline.txt");
        std::fs::write(&path, rendered).expect("write");
        let loaded = Baseline::load(&path).expect("load");
        assert_eq!(loaded.len(), 2);
        assert!(loaded.matches(findings).new.is_empty());
    }
}
