//! CLI for the u1-lint workspace analyzer.
//!
//! ```text
//! cargo run -p u1-lint -- check            # human diagnostics, exit 1 on new/stale findings
//! cargo run -p u1-lint -- check --json     # one JSON object per finding, for CI
//! cargo run -p u1-lint -- check --lock-graph lock-graph.json  # also export the lock graph
//! cargo run -p u1-lint -- baseline         # rewrite lint-baseline.txt from current state
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use u1_lint::baseline::Baseline;
use u1_lint::BASELINE_FILE;

struct Args {
    command: String,
    json: bool,
    root: PathBuf,
    baseline: PathBuf,
    lock_graph: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: u1-lint <check|baseline> [--json] [--root DIR] [--baseline FILE] [--lock-graph FILE]\n\
         \n\
         check     analyze the workspace; exit 1 on findings not in the baseline\n\
         \u{20}          or on stale baseline entries\n\
         baseline  rewrite the baseline file from the current findings\n\
         --json    (check) emit one JSON object per finding instead of text\n\
         --root    workspace root (default: the root this binary was built in)\n\
         --baseline  baseline path (default: <root>/{BASELINE_FILE})\n\
         --lock-graph  also write the workspace lock-acquisition graph (JSON)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    // The compile-time manifest dir is crates/u1-lint; the workspace root
    // is two levels up. Overridable for out-of-tree use.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    if !matches!(command.as_str(), "check" | "baseline") {
        usage();
    }
    let mut args = Args {
        command,
        json: false,
        root: default_root,
        baseline: PathBuf::new(),
        lock_graph: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--json" => args.json = true,
            "--root" => args.root = argv.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--baseline" => {
                args.baseline = argv.next().map(PathBuf::from).unwrap_or_else(|| usage())
            }
            "--lock-graph" => {
                args.lock_graph = Some(argv.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            _ => usage(),
        }
    }
    if args.baseline.as_os_str().is_empty() {
        args.baseline = args.root.join(BASELINE_FILE);
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let analysis = match u1_lint::analyze_workspace_full(&args.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "u1-lint: failed to read workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let findings = analysis.findings;

    if let Some(path) = &args.lock_graph {
        if let Err(e) = std::fs::write(path, &analysis.lock_graph_json) {
            eprintln!("u1-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.command == "baseline" {
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&args.baseline, rendered) {
            eprintln!("u1-lint: failed to write {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "u1-lint: wrote {} entries to {}",
            findings.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let outcome = match u1_lint::apply_baseline(findings, &args.baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("u1-lint: failed to read {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
    };

    if args.json {
        for f in &outcome.new {
            println!("{}", f.render_json());
        }
    } else {
        for f in &outcome.new {
            print!("{}", f.render_text());
        }
        eprintln!(
            "u1-lint: {} new finding(s), {} baselined, {} stale baseline entr(ies)",
            outcome.new.len(),
            outcome.baselined.len(),
            outcome.stale.len()
        );
    }
    // Stale entries go to stderr in both modes: a baseline entry matching
    // nothing means the debt it grandfathered is gone and the file must be
    // regenerated, so `check` fails rather than letting it rot.
    for (key, count) in &outcome.stale {
        eprintln!(
            "u1-lint: stale baseline entry (matched nothing — rerun `u1-lint baseline`): {key}{}",
            if *count > 1 {
                format!(" (×{count})")
            } else {
                String::new()
            }
        );
    }

    if outcome.new.is_empty() && outcome.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
