//! U1L006 `lock-order`: potential deadlocks from inconsistent lock
//! acquisition order.
//!
//! The workspace lock graph has an edge A → B whenever a live guard of A
//! spans an acquisition of B — directly in one function body, or through
//! one level of calls (a guard of A live across a call to a function that
//! acquires B). Any cycle in that graph is a potential deadlock: two
//! threads entering the cycle from different edges can each hold one lock
//! and wait forever on the other (the §5 outage class the paper attributes
//! to the lock-heavy metadata tier).
//!
//! Each cycle is reported once, anchored at the acquisition (or call) site
//! closing its lexicographically smallest edge, with every edge's two
//! acquisition sites in the message. Known approximations: lock identity is
//! `crate/receiver-path`, so two *instances* behind one field (per-shard
//! stripes, `stripes[i]` vs `stripes[j]`) merge into one node — an
//! index-ordered stripe sweep shows up as a self-loop and needs a reviewed
//! `allow`. The full graph is exported as `lock-graph.json` (see
//! `--lock-graph`) for review even when no cycle exists.

use super::{finding, Rule};
use crate::callgraph::Workspace;
use crate::diag::Finding;
use crate::model::SourceFile;

pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "U1L006"
    }

    fn slug(&self) -> &'static str {
        "lock-order"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let ws = Workspace::build(files);
        let mut out = Vec::new();
        for cycle in ws.cycles() {
            // Anchor at the first edge of the reported cycle (cycles() roots
            // each cycle at its smallest lock, so this is deterministic).
            let anchor = cycle[0];
            let file = &files[anchor.anchor_file];
            let path: Vec<&str> = std::iter::once(anchor.held.as_str())
                .chain(cycle.iter().map(|e| e.acquired.as_str()))
                .collect();
            let sites = cycle
                .iter()
                .map(|e| {
                    format!(
                        "`{}` (held at {}) -> `{}` (acquired at {}, in {})",
                        e.held, e.held_site, e.acquired, e.acquired_site, e.via
                    )
                })
                .collect::<Vec<_>>()
                .join("; ");
            out.push(finding(
                self.id(),
                self.slug(),
                file,
                anchor.anchor_line,
                1,
                format!(
                    "lock-order cycle {} — potential deadlock: {}",
                    path.join(" -> "),
                    sites
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        LockOrder.check(&files)
    }

    #[test]
    fn inverted_order_reports_one_cycle_with_both_sites() {
        let src = r#"
fn fwd(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
fn rev(&self) {
    let g = self.beta.lock();
    let h = self.alpha.lock();
}
"#;
        let f = check(&[("crates/u1-x/src/l.rs", src)]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0]
            .message
            .contains("u1-x/alpha -> u1-x/beta -> u1-x/alpha"));
        assert!(f[0].message.contains("l.rs:4"), "{}", f[0].message);
        assert!(f[0].message.contains("l.rs:8"), "{}", f[0].message);
    }

    #[test]
    fn consistent_order_must_not_flag() {
        let src = r#"
fn fwd(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
fn also_fwd(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
"#;
        assert!(check(&[("crates/u1-x/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn sequential_temporaries_must_not_flag() {
        let src = r#"
fn f(&self) {
    self.alpha.lock().push(1);
    self.beta.lock().push(2);
}
fn g(&self) {
    self.beta.lock().push(1);
    self.alpha.lock().push(2);
}
"#;
        assert!(check(&[("crates/u1-x/src/l.rs", src)]).is_empty());
    }
}
