//! U1L005 `no-float-eq`: exact float equality is banned in `u1-analytics`.
//!
//! The analytics crate reproduces the paper's distribution fits and
//! summary tables; `==`/`!=` against floats there silently turns numeric
//! jitter into wrong branch decisions (the classic `gini == 0.0` guard
//! that never fires after a refactor changes summation order). Flags a
//! comparison when either operand is visibly a float: a float literal
//! (`0.0`, `1e-9`, `2f64`) or an `f32`/`f64` associated constant such as
//! `f64::NAN`. Compare against an epsilon, use `.abs() < eps`, or
//! `total_cmp` instead.

use super::{finding, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::model::SourceFile;

pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "U1L005"
    }

    fn slug(&self) -> &'static str {
        "no-float-eq"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            if file.crate_name.as_deref() != Some("u1-analytics") {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len().saturating_sub(1) {
                // `==` is two adjacent `=` tokens; `!=` is `!` then `=`.
                // Exclude `<=`, `>=`, `+=` etc. (first char differs) and
                // `===`-like runs (impossible in valid Rust).
                let first = &toks[i].kind;
                let second = &toks[i + 1].kind;
                let is_eq = first.is_punct('=') && second.is_punct('=');
                let is_ne = first.is_punct('!') && second.is_punct('=');
                if !(is_eq || is_ne) {
                    continue;
                }
                // `a == = b` cannot occur, but `a === b` would double-count;
                // skip when the preceding token is also `=` (covers `<=`,
                // `>=`, `+=`… whose trailing `=` would otherwise pair with
                // a following `=`).
                if i > 0
                    && matches!(
                        toks[i - 1].kind,
                        TokenKind::Punct('=' | '<' | '>' | '+' | '-' | '*' | '/' | '!')
                    )
                {
                    continue;
                }
                if file.is_test_tok(i) {
                    continue;
                }
                let left_float = i > 0 && operand_is_float(file, i - 1, Direction::Left);
                let right_float = operand_is_float(file, i + 2, Direction::Right);
                if left_float || right_float {
                    let op = if is_eq { "==" } else { "!=" };
                    out.push(finding(
                        self.id(),
                        self.slug(),
                        file,
                        toks[i].line,
                        toks[i].col,
                        format!(
                            "exact float `{op}` comparison in u1-analytics; compare with an \
                             epsilon (`(a - b).abs() < EPS`) or use `total_cmp`"
                        ),
                    ));
                }
            }
        }
        out
    }
}

enum Direction {
    Left,
    Right,
}

/// Is the operand token at `idx` (left neighbor of the operator, or the
/// first token after it) visibly a float?
fn operand_is_float(file: &SourceFile, idx: usize, dir: Direction) -> bool {
    let Some(tok) = file.tokens.get(idx) else {
        return false;
    };
    match &tok.kind {
        TokenKind::Number(n) => is_float_literal(n),
        // `f64::NAN`, `f32::EPSILON`, …
        TokenKind::Ident(i) => match dir {
            Direction::Right => {
                (i == "f32" || i == "f64")
                    && file
                        .tokens
                        .get(idx + 1)
                        .is_some_and(|t| t.kind.is_punct(':'))
            }
            Direction::Left => {
                // Left side ends at the const name: look back for
                // `f64 :: NAME`.
                idx >= 3
                    && file.tokens[idx - 1].kind.is_punct(':')
                    && file.tokens[idx - 2].kind.is_punct(':')
                    && file.tokens[idx - 3]
                        .kind
                        .ident()
                        .is_some_and(|p| p == "f32" || p == "f64")
            }
        },
        _ => false,
    }
}

fn is_float_literal(raw: &str) -> bool {
    if raw.starts_with("0x") || raw.starts_with("0b") || raw.starts_with("0o") {
        return false;
    }
    raw.contains('.')
        || raw.ends_with("f32")
        || raw.ends_with("f64")
        || (raw.contains(['e', 'E'])
            && !raw
                .chars()
                .any(|c| c.is_ascii_alphabetic() && !matches!(c, 'e' | 'E')))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        FloatEq.check(&[SourceFile::parse(path, src)])
    }

    #[test]
    fn flags_float_literal_comparisons() {
        let src = r#"
fn f(vx: f64, vy: f64) -> bool {
    if vx == 0.0 { return true; }
    if 1e-9 != vy { return false; }
    vx == f64::NAN
}
"#;
        let lines: Vec<usize> = check("crates/u1-analytics/src/stats.rs", src)
            .iter()
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn integer_comparisons_and_compound_ops_pass() {
        let src = r#"
fn f(n: u64, x: f64) -> bool {
    let mut acc = 0.0;
    acc += 1.0;
    if n == 0 { return true; }
    n != 5 && acc <= 2.0 && acc >= 0.5
}
"#;
        assert!(check("crates/u1-analytics/src/stats.rs", src).is_empty());
    }

    #[test]
    fn only_analytics_is_in_scope() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(check("crates/u1-metastore/src/store.rs", src).is_empty());
        assert_eq!(check("crates/u1-analytics/src/summary.rs", src).len(), 1);
    }

    #[test]
    fn float_literal_shapes() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1e-9"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0xEE"));
        assert!(!is_float_literal("7u64"));
    }
}
