//! Rule registry. Every rule sees the whole workspace (cross-file rules
//! like the codec exhaustiveness audit need that); single-file rules just
//! iterate. Suppression filtering happens centrally in the engine, not in
//! the rules.

pub mod async_blocking;
pub mod float_eq;
pub mod guard_blocking;
pub mod lock_order;
pub mod msg_exhaustive;
pub mod no_panic;
pub mod nondet_flow;
pub mod truncating_cast;

use crate::diag::Finding;
use crate::model::SourceFile;

/// Crates whose non-test code serves requests and therefore must not panic
/// (rule U1L001). Mirrors the tier split in DESIGN.md.
pub const SERVING_TIERS: &[&str] = &[
    "u1-server",
    "u1-proto",
    "u1-metastore",
    "u1-blobstore",
    "u1-notify",
    "u1-auth",
];

pub trait Rule {
    fn id(&self) -> &'static str;
    fn slug(&self) -> &'static str;
    fn check(&self, files: &[SourceFile]) -> Vec<Finding>;
}

/// All rules, in ID order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanic),
        Box::new(truncating_cast::TruncatingCast),
        Box::new(msg_exhaustive::MsgExhaustive),
        Box::new(async_blocking::AsyncBlocking),
        Box::new(float_eq::FloatEq),
        Box::new(lock_order::LockOrder),
        Box::new(guard_blocking::GuardBlocking),
        Box::new(nondet_flow::NondetFlow),
    ]
}

/// Shared constructor so findings are keyed consistently.
pub(crate) fn finding(
    rule: &'static str,
    slug: &'static str,
    file: &SourceFile,
    line: usize,
    col: usize,
    message: String,
) -> Finding {
    Finding {
        rule,
        slug,
        path: file.rel_path.clone(),
        line,
        col,
        message,
        line_text: file.line_text(line).to_string(),
    }
}
