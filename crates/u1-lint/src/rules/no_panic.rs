//! U1L001 `no-panic`: the serving tiers must not panic in non-test code.
//!
//! Flags `.unwrap()`, `.expect(…)`, and the `panic!`/`todo!`/
//! `unimplemented!`/`unreachable!` macros in the request-serving crates
//! (see [`super::SERVING_TIERS`]). Test modules and `#[test]` fns are
//! exempt; deliberate exceptions use the escape hatch
//! `// u1-lint: allow(U1L001) — <reason>`.

use super::{finding, Rule, SERVING_TIERS};
use crate::diag::Finding;
use crate::model::SourceFile;

pub struct NoPanic;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "U1L001"
    }

    fn slug(&self) -> &'static str {
        "no-panic"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            let serving = file
                .crate_name
                .as_deref()
                .is_some_and(|c| SERVING_TIERS.contains(&c));
            if !serving {
                continue;
            }
            for (i, tok) in file.tokens.iter().enumerate() {
                let Some(name) = tok.kind.ident() else {
                    continue;
                };

                // `.unwrap(` / `.expect(` — method position only, so local
                // fns named e.g. `unwrap_frame` or struct fields don't trip.
                let is_method_call = PANIC_METHODS.contains(&name)
                    && i > 0
                    && file.tokens[i - 1].kind.is_punct('.')
                    && file.tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('('));
                // `panic!(` and friends — macro position only.
                let is_panic_macro = PANIC_MACROS.contains(&name)
                    && file.tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('!'))
                    // Not `macro_rules! panic` or a path segment like
                    // `std::panic::catch_unwind` (no `!` there anyway).
                    && !(i > 0 && file.tokens[i - 1].kind.is_punct(':'));

                if (is_method_call || is_panic_macro) && !file.is_test_tok(i) {
                    let what = if is_method_call {
                        format!("`.{name}()`")
                    } else {
                        format!("`{name}!`")
                    };
                    out.push(finding(
                        self.id(),
                        self.slug(),
                        file,
                        tok.line,
                        tok.col,
                        format!(
                            "{what} in non-test code of serving tier `{}`; return a typed \
                             error (u1-core::error) instead",
                            file.crate_name.as_deref().unwrap_or("?"),
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        NoPanic.check(&[SourceFile::parse(path, src)])
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = r#"
fn serve() {
    let a = conn.recv().unwrap();
    let b = row.expect("row must exist");
    if bad { panic!("boom"); }
    match x { _ => unreachable!("nope") }
}
"#;
        let found = check("crates/u1-server/src/handler.rs", src);
        let rules: Vec<usize> = found.iter().map(|f| f.line).collect();
        assert_eq!(rules, vec![3, 4, 5, 6]);
        assert!(found.iter().all(|f| f.rule == "U1L001"));
    }

    #[test]
    fn test_code_and_non_serving_crates_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); panic!("fine in tests"); }
}
"#;
        assert!(check("crates/u1-server/src/handler.rs", src).is_empty());
        // u1-analytics is not a serving tier.
        assert!(check("crates/u1-analytics/src/stats.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn identifier_lookalikes_do_not_trip() {
        let src = r#"
fn unwrap_frame(buf: &[u8]) -> &[u8] { &buf[4..] }
fn serve() {
    let a = unwrap_frame(&data);
    let msg = "never unwrap() in prod";
    let level = settings.panic; // field named panic
}
"#;
        assert!(check("crates/u1-proto/src/frame.rs", src).is_empty());
    }
}
