//! U1L003 `msg-exhaustive`: every message variant must be wired through
//! both the encoder and the decoder.
//!
//! Reads the `Request`, `Response`, and `Push` enum declarations in
//! `u1-proto/src/msg.rs`, then audits `u1-proto/src/codec.rs`: each variant
//! must be constructed/matched (`Enum::Variant`) at least once inside an
//! encode-side function (`put_*`/`encode*`) and once inside a decode-side
//! function (`get_*`/`decode*`). A variant added to `msg.rs` but not to
//! both codec paths is exactly the frame-mismatch bug class the paper's
//! postmortems describe, and the compiler alone only catches the encode
//! half (match exhaustiveness) — never a forgotten decoder tag arm.

use super::{finding, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::model::SourceFile;

pub struct MsgExhaustive;

const MSG_ENUMS: &[&str] = &["Request", "Response", "Push"];

impl Rule for MsgExhaustive {
    fn id(&self) -> &'static str {
        "U1L003"
    }

    fn slug(&self) -> &'static str {
        "msg-exhaustive"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let Some(msg) = files
            .iter()
            .find(|f| f.rel_path.ends_with("u1-proto/src/msg.rs"))
        else {
            return Vec::new();
        };
        let Some(codec) = files
            .iter()
            .find(|f| f.rel_path.ends_with("u1-proto/src/codec.rs"))
        else {
            return Vec::new();
        };

        let mut out = Vec::new();
        for enum_name in MSG_ENUMS {
            for variant in enum_variants(msg, enum_name) {
                let encode = usage_count(codec, enum_name, &variant.name, Side::Encode);
                let decode = usage_count(codec, enum_name, &variant.name, Side::Decode);
                let missing = match (encode, decode) {
                    (0, 0) => Some("neither the encode nor the decode path"),
                    (0, _) => Some("the encode path (no `put_*`/`encode*` arm)"),
                    (_, 0) => Some("the decode path (no `get_*`/`decode*` arm)"),
                    _ => None,
                };
                if let Some(missing) = missing {
                    out.push(finding(
                        self.id(),
                        self.slug(),
                        msg,
                        variant.line,
                        variant.col,
                        format!(
                            "`{enum_name}::{}` is declared in msg.rs but missing from {missing} \
                             in codec.rs",
                            variant.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

struct Variant {
    name: String,
    line: usize,
    col: usize,
}

enum Side {
    Encode,
    Decode,
}

/// Extracts the variant names of `enum <name> { … }`.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<Variant> {
    let toks = &file.tokens;
    let Some(decl) = (0..toks.len()).find(|&i| {
        toks[i].kind.is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.kind.is_ident(enum_name))
    }) else {
        return Vec::new();
    };
    let Some(open) = (decl..toks.len()).find(|&i| toks[i].kind.is_punct('{')) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 1usize; // past the opening `{`
    let mut expecting_variant = true;
    for t in &toks[open + 1..] {
        match &t.kind {
            // Attribute brackets (`#[…]`) nest like groups but do not
            // consume the variant slot: `#[doc = "…"] BeginUpload` must
            // still yield `BeginUpload`.
            TokenKind::Punct('{') | TokenKind::Punct('(') => {
                depth += 1;
                expecting_variant = false;
            }
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break; // end of enum body
                }
            }
            TokenKind::Punct(',') if depth == 1 => expecting_variant = true,
            TokenKind::Ident(name) if depth == 1 && expecting_variant => {
                variants.push(Variant {
                    name: name.clone(),
                    line: t.line,
                    col: t.col,
                });
                expecting_variant = false;
            }
            _ => {}
        }
    }
    variants
}

/// Counts `Enum::Variant` occurrences inside encode- or decode-side
/// functions of the codec (non-test code only).
fn usage_count(codec: &SourceFile, enum_name: &str, variant: &str, side: Side) -> usize {
    let toks = &codec.tokens;
    let mut count = 0;
    for f in &codec.fns {
        let on_side = match side {
            Side::Encode => f.name.starts_with("put_") || f.name.starts_with("encode"),
            Side::Decode => f.name.starts_with("get_") || f.name.starts_with("decode"),
        };
        if !on_side {
            continue;
        }
        for i in f.body.first_tok..=f.body.last_tok.min(toks.len().saturating_sub(1)) {
            if toks[i].kind.is_ident(variant)
                && i >= 3
                && toks[i - 1].kind.is_punct(':')
                && toks[i - 2].kind.is_punct(':')
                && toks[i - 3].kind.is_ident(enum_name)
                && !codec.is_test_tok(i)
            {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    const MSG: &str = r#"
pub enum Request {
    Ping,
    #[doc = "uploads"]
    BeginUpload { size: u64 },
    Unlink(u64),
}
pub enum Response { Ok, Err(String) }
pub enum Push { NodeChanged }
"#;

    fn run(codec_src: &str) -> Vec<Finding> {
        let msg = SourceFile::parse("crates/u1-proto/src/msg.rs", MSG);
        let codec = SourceFile::parse("crates/u1-proto/src/codec.rs", codec_src);
        MsgExhaustive.check(&[msg, codec])
    }

    #[test]
    fn variant_extraction_handles_fields_and_attrs() {
        let msg = SourceFile::parse("crates/u1-proto/src/msg.rs", MSG);
        let names: Vec<String> = enum_variants(&msg, "Request")
            .into_iter()
            .map(|v| v.name)
            .collect();
        assert_eq!(names, vec!["Ping", "BeginUpload", "Unlink"]);
    }

    #[test]
    fn fully_wired_codec_is_clean() {
        let codec = r#"
fn put_request(r: &Request) {
    match r {
        Request::Ping => {}
        Request::BeginUpload { size } => {}
        Request::Unlink(n) => {}
    }
}
fn get_request(tag: u8) -> Request {
    match tag {
        0 => Request::Ping,
        1 => Request::BeginUpload { size: 0 },
        _ => Request::Unlink(0),
    }
}
fn put_response(r: &Response) { match r { Response::Ok => {}, Response::Err(e) => {} } }
fn get_response(tag: u8) -> Response { if tag == 0 { Response::Ok } else { Response::Err(s) } }
fn put_push(p: &Push) { match p { Push::NodeChanged => {} } }
fn get_push(tag: u8) -> Push { Push::NodeChanged }
"#;
        assert!(run(codec).is_empty());
    }

    #[test]
    fn missing_decode_arm_is_reported_at_the_variant() {
        let codec = r#"
fn put_request(r: &Request) {
    match r {
        Request::Ping => {}
        Request::BeginUpload { size } => {}
        Request::Unlink(n) => {}
    }
}
fn get_request(tag: u8) -> Request {
    match tag {
        0 => Request::Ping,
        _ => Request::Unlink(0), // BeginUpload forgotten
    }
}
fn put_response(r: &Response) { match r { Response::Ok => {}, Response::Err(e) => {} } }
fn get_response(tag: u8) -> Response { if tag == 0 { Response::Ok } else { Response::Err(s) } }
fn put_push(p: &Push) { match p { Push::NodeChanged => {} } }
fn get_push(tag: u8) -> Push { Push::NodeChanged }
"#;
        let found = run(codec);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("Request::BeginUpload"));
        assert!(found[0].message.contains("decode path"));
        assert_eq!(found[0].path, "crates/u1-proto/src/msg.rs");
        // Points at the BeginUpload declaration line in MSG.
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn encode_only_in_helper_fn_does_not_count_for_decode() {
        // A variant referenced only in a put_* fn must still fail decode.
        let codec = r#"
fn put_push(p: &Push) { match p { Push::NodeChanged => {} } }
"#;
        let found = run(codec);
        // Everything except Push::NodeChanged-encode is missing.
        assert!(found
            .iter()
            .any(|f| f.message.contains("Push::NodeChanged") && f.message.contains("decode")));
    }
}
