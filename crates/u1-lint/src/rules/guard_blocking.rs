//! U1L007 `guard-across-blocking`: a live `Mutex`/`RwLock` guard spanning a
//! blocking operation — file or socket I/O, `thread::sleep`, thread
//! `.join()`, or a channel `recv`.
//!
//! Holding a lock across a blocking call serializes every contender behind
//! the slowest syscall; this is the hold-over-I/O pattern behind the
//! paper's Fig. 12–14 service-time tails. Detection is per-function: each
//! guard's token live range (let-binding → end of block, statement for
//! temporaries, scrutinee block for `match`) is scanned for blocking
//! sites. Condvar `wait` is deliberately exempt — waiting with the guard
//! is its contract. A blocking site under several nested guards is
//! reported once, against the innermost guard.

use super::{finding, Rule};
use crate::callgraph::Workspace;
use crate::diag::Finding;
use crate::model::SourceFile;

pub struct GuardBlocking;

impl Rule for GuardBlocking {
    fn id(&self) -> &'static str {
        "U1L007"
    }

    fn slug(&self) -> &'static str {
        "guard-across-blocking"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let ws = Workspace::build(files);
        let mut out = Vec::new();
        for (fi, ff) in ws.facts.iter().enumerate() {
            let file = &files[fi];
            for f in &ff.fns {
                for b in &f.blocking {
                    // Innermost covering guard: the one acquired last before
                    // the blocking site.
                    let covering = f
                        .acquisitions
                        .iter()
                        .filter(|a| a.tok < b.tok && (a.live_first..=a.live_last).contains(&b.tok))
                        .max_by_key(|a| a.tok);
                    if let Some(a) = covering {
                        let who = match &a.guard_name {
                            Some(n) => format!("guard `{n}` ({})", a.display),
                            None => format!("temporary guard of {}", a.display),
                        };
                        out.push(finding(
                            self.id(),
                            self.slug(),
                            file,
                            b.line,
                            b.col,
                            format!(
                                "{who}, acquired at line {}, is held across blocking {} in `{}`",
                                a.line, b.what, f.name
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        GuardBlocking.check(&[SourceFile::parse("crates/u1-x/src/l.rs", src)])
    }

    #[test]
    fn guard_across_sleep_and_file_io_flags() {
        let src = r#"
fn f(&self) {
    let g = self.table.lock();
    std::thread::sleep(backoff);
    let data = std::fs::File::open(path);
}
"#;
        let f = check(src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f[0].message.contains("guard `g`"));
        assert!(f[0].message.contains("thread::sleep"));
        assert!(f[1].message.contains("File open/create"));
    }

    #[test]
    fn temporary_guard_spanning_io_in_one_statement_flags() {
        let src = "fn f(&self) { self.writer.lock().write_all(&bytes); }\n";
        let f = check(src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0]
            .message
            .contains("temporary guard of self.writer.lock()"));
    }

    #[test]
    fn io_after_guard_scope_must_not_flag() {
        let src = r#"
fn f(&self) {
    let n = self.table.lock().len();
    std::thread::sleep(backoff);
    {
        let g = self.table.lock();
        touch(g);
    }
    let data = std::fs::File::open(path);
}
"#;
        assert!(check(src).is_empty(), "{:#?}", check(src));
    }

    #[test]
    fn drop_before_io_must_not_flag() {
        let src = r#"
fn f(&self) {
    let g = self.table.lock();
    drop(g);
    handle.join();
}
"#;
        assert!(check(src).is_empty());
    }

    #[test]
    fn recv_and_join_under_guard_flag() {
        let src = r#"
fn f(&self) {
    let g = self.state.write();
    let msg = rx.recv();
    worker.join();
}
"#;
        let f = check(src);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains(".recv()"));
        assert!(f[1].message.contains(".join()"));
    }
}
