//! U1L008 `nondet-flow`: nondeterminism feeding the deterministic outputs.
//!
//! The reproduction's core claim is bit-identical traces and reports at any
//! worker count; this rule statically gates the two ways that silently
//! breaks:
//!
//! * **Hash-ordered iteration on an output path** — `HashMap`/`HashSet`
//!   (std or the vendored fxhash) iteration inside any function that
//!   *reaches* trace emission, `DriverReport`, `EngineReport`, or JSON
//!   bench output through the approximate call graph. Iteration order
//!   follows the hasher, so anything it feeds must be re-sorted — prefer
//!   `BTreeMap`, sort the collected items, or justify with an `allow`.
//! * **Wall-clock / OS-entropy sources** — bare `SystemTime::now`,
//!   `thread_rng`, `OsRng`, `from_entropy`/`from_os_rng` anywhere outside
//!   the allow-list (the seeded-RNG substrate `u1-core/src/rngx.rs`, the
//!   sim clock `u1-core/src/clock.rs`, and `u1-bench`, whose wall-clock
//!   timings are measurements, not simulation inputs).
//!
//! Functions whose *results* flow into a report built by their caller are
//! not seen by the forward reach closure — that false-negative class is
//! covered dynamically by the differential tests and documented in
//! DESIGN.md §12.

use super::{finding, Rule};
use crate::callgraph::Workspace;
use crate::diag::Finding;
use crate::model::SourceFile;

/// Files/crates where wall-clock and OS-entropy use is by design.
const ENTROPY_ALLOWED_FILES: &[&str] =
    &["crates/u1-core/src/clock.rs", "crates/u1-core/src/rngx.rs"];
const ENTROPY_ALLOWED_CRATES: &[&str] = &["u1-bench"];

pub struct NondetFlow;

impl Rule for NondetFlow {
    fn id(&self) -> &'static str {
        "U1L008"
    }

    fn slug(&self) -> &'static str {
        "nondet-flow"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let ws = Workspace::build(files);
        let mut out = Vec::new();
        for (fi, ff) in ws.facts.iter().enumerate() {
            let file = &files[fi];
            for (gi, f) in ff.fns.iter().enumerate() {
                if ws.reaches_output[fi][gi] {
                    for it in &f.hash_iters {
                        let via = match ws.sink_witness((fi, gi)) {
                            Some(path) => format!(" (reaches output via `{}`)", path.join(" -> ")),
                            None => String::new(),
                        };
                        out.push(finding(
                            self.id(),
                            self.slug(),
                            file,
                            it.line,
                            it.col,
                            format!(
                                "hash-ordered iteration `{}` in `{}`, which feeds \
                                 trace/report output{via}; iteration order follows the \
                                 hasher — sort, use a BTreeMap, or justify with an allow",
                                it.display, f.name
                            ),
                        ));
                    }
                }
                if !entropy_allowed(file) {
                    for e in &f.entropy {
                        out.push(finding(
                            self.id(),
                            self.slug(),
                            file,
                            e.line,
                            e.col,
                            format!(
                                "nondeterministic source {} in `{}`; simulation inputs \
                                 must come from the seeded RNG substrate (u1-core rngx) \
                                 or the sim clock",
                                e.what, f.name
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn entropy_allowed(file: &SourceFile) -> bool {
    ENTROPY_ALLOWED_FILES.contains(&file.rel_path.as_str())
        || file
            .crate_name
            .as_deref()
            .is_some_and(|c| ENTROPY_ALLOWED_CRATES.contains(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        NondetFlow.check(&files)
    }

    #[test]
    fn hash_iteration_reaching_report_flags_with_witness() {
        let src = r#"
fn tally(counts: &HashMap<u32, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_, v) in counts.iter() {
        out.push(*v);
    }
    build_report(out)
}
fn build_report(rows: Vec<u64>) -> DriverReport {
    DriverReport { rows }
}
"#;
        let f = check(&[("crates/u1-x/src/l.rs", src)]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("counts.iter()"));
        assert!(f[0].message.contains("build_report"), "{}", f[0].message);
    }

    #[test]
    fn hash_iteration_off_the_output_path_must_not_flag() {
        let src = r#"
fn probe(counts: &HashMap<u32, u64>) -> u64 {
    counts.iter().map(|(_, v)| *v).sum()
}
"#;
        assert!(check(&[("crates/u1-x/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn btree_iteration_on_output_path_must_not_flag() {
        let src = r#"
fn tally(counts: &BTreeMap<u32, u64>) -> DriverReport {
    for (_, v) in counts.iter() {
        absorb(v);
    }
    DriverReport::default()
}
"#;
        assert!(check(&[("crates/u1-x/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn entropy_outside_allow_list_flags() {
        let src = "fn f() { let t = SystemTime::now(); }\n";
        let f = check(&[("crates/u1-server/src/l.rs", src)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SystemTime::now"));
    }

    #[test]
    fn entropy_in_allowed_files_must_not_flag() {
        let clock = "fn wall() -> u64 { SystemTime::now().into() }\n";
        let bench = "fn t() { let started = SystemTime::now(); }\n";
        assert!(check(&[
            ("crates/u1-core/src/clock.rs", clock),
            ("crates/u1-bench/src/scenario.rs", bench),
        ])
        .is_empty());
    }
}
