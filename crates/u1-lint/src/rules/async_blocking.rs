//! U1L004 `async-blocking`: `async fn` bodies must not block the executor.
//!
//! Flags two classes inside `async fn` bodies, workspace-wide:
//! - `std::sync::Mutex` (or a bare `Mutex::new`) — a std mutex held across
//!   an `.await` deadlocks the worker; use a lock designed for async or
//!   confine locking to sync helper functions;
//! - `thread::sleep` / `std::thread::sleep` — stalls the whole executor
//!   thread rather than yielding.
//!
//! The current back-end is thread-per-connection, so the production tree
//! has no async fns today; the rule exists so the first async refactor
//! (ROADMAP: epoll/io_uring experiments) starts with the guardrail already
//! in place.

use super::{finding, Rule};
use crate::diag::Finding;
use crate::model::{FnSpan, SourceFile};

pub struct AsyncBlocking;

impl Rule for AsyncBlocking {
    fn id(&self) -> &'static str {
        "U1L004"
    }

    fn slug(&self) -> &'static str {
        "async-blocking"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            for f in file.fns.iter().filter(|f| f.is_async) {
                self.check_body(file, f, &mut out);
            }
        }
        out
    }
}

impl AsyncBlocking {
    fn check_body(&self, file: &SourceFile, f: &FnSpan, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        let last = f.body.last_tok.min(toks.len().saturating_sub(1));
        for i in f.body.first_tok..=last {
            if file.is_test_tok(i) {
                continue;
            }
            let Some(name) = toks[i].kind.ident() else {
                continue;
            };

            // `thread::sleep` (with or without a `std::` prefix).
            if name == "sleep" && path_seg_before(file, i).is_some_and(|prev| prev == "thread") {
                out.push(finding(
                    self.id(),
                    self.slug(),
                    file,
                    toks[i].line,
                    toks[i].col,
                    format!(
                        "`thread::sleep` inside `async fn {}` blocks the executor thread; \
                         use an async timer or move the wait to a sync helper",
                        f.name
                    ),
                ));
            }

            // `std::sync::Mutex` path, or `Mutex::…` where the file does
            // not import a non-std mutex (heuristic: flag the fully
            // qualified path always, the bare name only on construction).
            if name == "Mutex" {
                let qualified = path_seg_before(file, i).is_some_and(|p| p == "sync")
                    && path_seg_before_n(file, i, 2).is_some_and(|p| p == "std");
                let constructed = toks
                    .get(i + 1)
                    .zip(toks.get(i + 2))
                    .zip(toks.get(i + 3))
                    .is_some_and(|((a, b), c)| {
                        a.kind.is_punct(':') && b.kind.is_punct(':') && c.kind.is_ident("new")
                    });
                if qualified || constructed {
                    out.push(finding(
                        self.id(),
                        self.slug(),
                        file,
                        toks[i].line,
                        toks[i].col,
                        format!(
                            "blocking `Mutex` used inside `async fn {}`; a std mutex held \
                             across `.await` can deadlock the executor",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// The path segment directly before token `i` (`foo::<here>` → `foo`).
fn path_seg_before(file: &SourceFile, i: usize) -> Option<&str> {
    path_seg_before_n(file, i, 1)
}

/// The `n`-th path segment before token `i` along a `::` chain.
fn path_seg_before_n(file: &SourceFile, i: usize, n: usize) -> Option<&str> {
    let mut idx = i;
    for _ in 0..n {
        if idx < 3
            || !file.tokens[idx - 1].kind.is_punct(':')
            || !file.tokens[idx - 2].kind.is_punct(':')
        {
            return None;
        }
        idx -= 3;
    }
    file.tokens[idx].kind.ident()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        AsyncBlocking.check(&[SourceFile::parse("crates/u1-server/src/session.rs", src)])
    }

    #[test]
    fn flags_sleep_and_mutex_in_async_fn() {
        let src = r#"
async fn handle(conn: Conn) {
    let lock = std::sync::Mutex::new(0u32);
    std::thread::sleep(Duration::from_millis(5));
    thread::sleep(BACKOFF);
}
"#;
        let lines: Vec<usize> = check(src).iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn sync_fns_are_exempt() {
        let src = r#"
fn handle(conn: Conn) {
    let lock = std::sync::Mutex::new(0u32);
    std::thread::sleep(Duration::from_millis(5));
}
"#;
        assert!(check(src).is_empty());
    }

    #[test]
    fn async_safe_constructs_pass() {
        let src = r#"
async fn handle(conn: Conn) {
    let guard = state.lock().await;
    timer::sleep_until(deadline).await; // not thread::sleep
    tokio_sleep(BACKOFF).await;
}
"#;
        assert!(check(src).is_empty());
    }
}
