//! U1L002 `no-truncating-cast`: wire/frame/codec code must not narrow
//! integers with `as`.
//!
//! In files named `wire.rs`, `frame.rs`, or `codec.rs` (any crate), an
//! `as` cast to a type that can drop bits — `u8`/`u16`/`u32`/`i8`/`i16`/
//! `i32`, or `usize`/`isize` whose width is platform-dependent — is
//! flagged. The paper's framing bugs came exactly from silent 64→32-bit
//! length truncation; `TryFrom` conversions returning a typed overflow
//! error are required instead.
//!
//! Two shapes are exempt because they provably cannot truncate:
//! - literal casts whose value fits the target (`0x7F as u8`);
//! - mask-then-cast, `(expr & MASK) as T`, when `MASK` fits the target —
//!   the varint encoder's `(v & 0x7F) as u8` idiom.

use super::{finding, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::model::SourceFile;

pub struct TruncatingCast;

const WIRE_FILE_STEMS: &[&str] = &["wire", "frame", "codec"];

/// Narrow targets and their maximum values. `usize`/`isize` are treated as
/// 32-bit (their minimum guaranteed width here) so a u64 → usize cast is
/// flagged even though it happens to be lossless on 64-bit hosts.
const NARROW_TARGETS: &[(&str, u128)] = &[
    ("u8", u8::MAX as u128),
    ("u16", u16::MAX as u128),
    ("u32", u32::MAX as u128),
    ("i8", i8::MAX as u128),
    ("i16", i16::MAX as u128),
    ("i32", i32::MAX as u128),
    ("usize", u32::MAX as u128),
    ("isize", i32::MAX as u128),
];

impl Rule for TruncatingCast {
    fn id(&self) -> &'static str {
        "U1L002"
    }

    fn slug(&self) -> &'static str {
        "no-truncating-cast"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            if !WIRE_FILE_STEMS.contains(&file.stem.as_str()) {
                continue;
            }
            for (i, tok) in file.tokens.iter().enumerate() {
                if !tok.kind.is_ident("as") {
                    continue;
                }
                let Some(target) = file.tokens.get(i + 1).and_then(|t| t.kind.ident()) else {
                    continue;
                };
                let Some(&(_, target_max)) =
                    NARROW_TARGETS.iter().find(|(name, _)| *name == target)
                else {
                    continue;
                };
                if file.is_test_tok(i) {
                    continue;
                }
                if literal_fits(file, i, target_max) || masked_fits(file, i, target_max) {
                    continue;
                }
                out.push(finding(
                    self.id(),
                    self.slug(),
                    file,
                    tok.line,
                    tok.col,
                    format!(
                        "possibly-truncating `as {target}` in wire-format code; use \
                         `{target}::try_from(..)` (or a checked helper) and surface overflow \
                         as a protocol error"
                    ),
                ));
            }
        }
        out
    }
}

/// `LIT as T` where the literal's value fits the target.
fn literal_fits(file: &SourceFile, as_idx: usize, target_max: u128) -> bool {
    as_idx > 0
        && matches!(
            &file.tokens[as_idx - 1].kind,
            TokenKind::Number(n) if parse_int(n).is_some_and(|v| v <= target_max)
        )
}

/// `(… & LIT) as T` where the mask literal fits the target: the `&` bounds
/// the value regardless of the operand's type.
fn masked_fits(file: &SourceFile, as_idx: usize, target_max: u128) -> bool {
    if as_idx == 0 || !file.tokens[as_idx - 1].kind.is_punct(')') {
        return false;
    }
    // Walk back to the matching `(`.
    let mut depth = 0usize;
    let mut open = None;
    for j in (0..as_idx).rev() {
        match file.tokens[j].kind {
            TokenKind::Punct(')') => depth += 1,
            TokenKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    open = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(open) = open else { return false };
    // Inside the parens, look for a top-level `&` with a fitting literal on
    // either side. (`&&` would be two adjacent Punct('&') tokens; a mask
    // expression has exactly one.)
    let inner = &file.tokens[open + 1..as_idx - 1];
    for (k, t) in inner.iter().enumerate() {
        let is_single_amp = t.kind.is_punct('&')
            && !matches!(inner.get(k + 1), Some(n) if n.kind.is_punct('&'))
            && !(k > 0 && inner[k - 1].kind.is_punct('&'));
        if !is_single_amp {
            continue;
        }
        let neighbor_fits = |idx: Option<&crate::lexer::Token>| {
            matches!(
                idx.map(|t| &t.kind),
                Some(TokenKind::Number(n)) if parse_int(n).is_some_and(|v| v <= target_max)
            )
        };
        if neighbor_fits(inner.get(k + 1)) || (k > 0 && neighbor_fits(inner.get(k - 1))) {
            return true;
        }
    }
    false
}

/// Parses an integer literal in any base, ignoring `_` separators and a
/// type suffix. Returns None for float literals.
fn parse_int(raw: &str) -> Option<u128> {
    let cleaned: String = raw.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = match cleaned.get(..2) {
        Some("0x") | Some("0X") => (&cleaned[2..], 16),
        Some("0o") => (&cleaned[2..], 8),
        Some("0b") => (&cleaned[2..], 2),
        _ => (cleaned.as_str(), 10),
    };
    // Strip a trailing type suffix (u8, i64, usize, …).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    // Anything unparsed that is not a pure alpha suffix (e.g. `.` or `e5`)
    // means a float or malformed literal.
    if !digits[end..].chars().all(|c| c.is_ascii_alphanumeric()) || digits[end..].starts_with('e') {
        return None;
    }
    if digits.contains('.') {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        TruncatingCast.check(&[SourceFile::parse(path, src)])
    }

    #[test]
    fn flags_narrowing_casts_in_wire_files() {
        let src = r#"
fn get_len(buf: &mut B) -> usize {
    let raw = get_uvarint(buf)? as usize;
    let id = get_uvarint(buf)? as u32;
    let b = word as u8;
    raw + id as usize + b as usize
}
"#;
        let lines: Vec<usize> = check("crates/u1-proto/src/wire.rs", src)
            .iter()
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 6]);
    }

    #[test]
    fn widening_and_exempt_shapes_pass() {
        let src = r#"
fn put(out: &mut B, v: u64, items: &[u8]) {
    put_uvarint(out, items.len() as u64);      // widening: fine
    out.put_u8((v & 0x7F) as u8);              // masked: provably fits
    out.put_u8(0x80 as u8);                    // literal fits
    let tag = (v >> 4 & 0x0F) as u8;           // masked, literal on right
}
"#;
        assert!(check("crates/u1-proto/src/codec.rs", src).is_empty());
    }

    #[test]
    fn mask_too_large_still_flags() {
        let src = "fn f(v: u64) -> u8 { (v & 0x1FF) as u8 }\n";
        assert_eq!(check("crates/u1-proto/src/wire.rs", src).len(), 1);
    }

    #[test]
    fn non_wire_files_are_out_of_scope() {
        let src = "fn f(v: u64) -> u32 { v as u32 }\n";
        assert!(check("crates/u1-metastore/src/store.rs", src).is_empty());
    }

    #[test]
    fn reference_and_in_mask_scan_is_not_fooled() {
        // `&x & 2` style and `&&` must not register as mask exemptions,
        // while a real mask with the literal left of `&` must.
        let src = "fn f(a: u64, b: u64) -> u32 { (a & b) as u32 }\n";
        assert_eq!(check("crates/u1-proto/src/wire.rs", src).len(), 1);
        let src2 = "fn f(a: u64) -> u32 { (0xFF & a) as u32 }\n";
        assert!(check("crates/u1-proto/src/wire.rs", src2).is_empty());
    }

    #[test]
    fn int_literal_parsing() {
        assert_eq!(parse_int("0x7F"), Some(0x7F));
        assert_eq!(parse_int("1_000u64"), Some(1000));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("1.5"), None);
        assert_eq!(parse_int("1e5"), None);
    }
}
