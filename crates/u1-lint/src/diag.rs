//! Findings and their rendering: rustc-style text for humans, line-oriented
//! JSON for CI. JSON is emitted by hand — the analyzer stays dependency-free
//! so it builds even when the workspace under analysis does not.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, e.g. `U1L001`.
    pub rule: &'static str,
    /// Short rule slug, e.g. `no-panic`.
    pub slug: &'static str,
    /// Workspace-relative path.
    pub path: String,
    pub line: usize,
    pub col: usize,
    /// Human message for this occurrence.
    pub message: String,
    /// Trimmed text of the offending source line (baseline key material).
    pub line_text: String,
}

impl Finding {
    /// Baseline identity: rule + file + trimmed line text. Line *numbers*
    /// are deliberately excluded so unrelated edits above a baselined
    /// violation do not invalidate the baseline.
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, self.line_text)
    }

    /// rustc-style rendering:
    ///
    /// ```text
    /// error[U1L001]: `unwrap()` in serving-tier non-test code
    ///   --> crates/u1-server/src/tcpserver.rs:216:14
    ///    |
    /// 216|     handle.join().unwrap();
    ///    |
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.path, self.line, self.col);
        let gutter = self.line.to_string().len();
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{} | {}", self.line, self.line_text);
        let _ = writeln!(out, "{:gutter$} |", "");
        out
    }

    pub fn render_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","slug":"{}","path":"{}","line":{},"col":{},"message":"{}","snippet":"{}"}}"#,
            self.rule,
            self.slug,
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.line_text),
        )
    }
}

pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "U1L001",
            slug: "no-panic",
            path: "crates/u1-server/src/tcpserver.rs".into(),
            line: 216,
            col: 14,
            message: "`unwrap()` in serving-tier non-test code".into(),
            line_text: "handle.join().unwrap();".into(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let text = finding().render_text();
        assert!(text.starts_with("error[U1L001]:"));
        assert!(text.contains("--> crates/u1-server/src/tcpserver.rs:216:14"));
        assert!(text.contains("216 | handle.join().unwrap();"));
    }

    #[test]
    fn json_rendering_escapes() {
        let mut f = finding();
        f.message = "bad \"quote\"".into();
        let json = f.render_json();
        assert!(json.contains(r#""message":"bad \"quote\"""#));
        assert!(json.contains(r#""line":216"#));
        assert!(json.contains(r#""snippet":"handle.join().unwrap();""#));
    }

    #[test]
    fn baseline_key_ignores_line_number() {
        let mut a = finding();
        let mut b = finding();
        a.line = 10;
        b.line = 99;
        assert_eq!(a.baseline_key(), b.baseline_key());
    }
}
