//! Workspace model for the concurrency rules: an approximate call graph
//! over every function's [`crate::facts::FnFacts`], the lock-acquisition
//! graph with one level of call propagation, its cycles, and the
//! reach-to-output closure used by U1L008.
//!
//! Resolution is by name *plus qualifier* (see [`CallQual`]): bare calls
//! resolve to free functions, `self.foo(..)` / `Self::foo(..)` to the
//! caller's own impl block, and `Type::foo(..)` to any `impl Type`. Method
//! calls on other receivers carry no type information and are not resolved
//! at all. The graph still over-approximates (same-named impls of one type
//! name merge) and under-approximates (trait objects, function pointers,
//! closures, and unqualified method calls are invisible); both directions
//! are documented in DESIGN.md §12.

use crate::diag::json_escape;
use crate::facts::{self, CallQual, CallSite, FileFacts};
use crate::model::SourceFile;
use std::collections::HashMap;

/// A function's global identity: (file index, facts index).
pub type FnId = (usize, usize);

/// One edge in the lock-acquisition graph: `held` was live when `acquired`
/// was taken.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    /// `path:line` of the held lock's acquisition.
    pub held_site: String,
    /// `path:line` of the second acquisition.
    pub acquired_site: String,
    /// Anchor for the finding/suppression: file index + line of the second
    /// acquisition *in the function under analysis* (for propagated edges
    /// this is the call site, which is where the `allow` belongs).
    pub anchor_file: usize,
    pub anchor_line: usize,
    /// Function the edge was observed in, plus the callee for propagated
    /// edges.
    pub via: String,
}

/// The workspace concurrency model shared by U1L006–U1L008.
pub struct Workspace {
    pub facts: Vec<FileFacts>,
    /// fn name → all functions with that name (filter by [`CallQual`] via
    /// `resolve` before following).
    pub by_name: HashMap<String, Vec<FnId>>,
    /// Per-file crate name, aligned with `facts`.
    pub crates: Vec<Option<String>>,
    /// Lock graph edges, deduplicated by (held, acquired, anchor).
    pub edges: Vec<LockEdge>,
    /// Whether each function reaches trace/report/JSON output (its own
    /// sink mark, or transitively through calls).
    pub reaches_output: Vec<Vec<bool>>,
}

/// Candidate targets for `call` made from file `fi` inside `caller_owner`'s
/// impl block (None for free callers).
fn resolve(
    by_name: &HashMap<String, Vec<FnId>>,
    facts: &[FileFacts],
    crates: &[Option<String>],
    fi: usize,
    caller_owner: Option<&str>,
    call: &CallSite,
) -> Vec<FnId> {
    by_name
        .get(&call.name)
        .into_iter()
        .flatten()
        .copied()
        .filter(|&(cf, cg)| {
            let callee = &facts[cf].fns[cg];
            match &call.qual {
                CallQual::Bare => callee.owner.is_none(),
                CallQual::SelfMethod => {
                    caller_owner.is_some()
                        && callee.owner.as_deref() == caller_owner
                        && crates[cf] == crates[fi]
                }
                CallQual::Typed(t) => callee.owner.as_deref() == Some(t.as_str()),
            }
        })
        .collect()
}

impl Workspace {
    pub fn build(files: &[SourceFile]) -> Workspace {
        let facts: Vec<FileFacts> = files.iter().map(facts::extract).collect();
        let crates: Vec<Option<String>> = files.iter().map(|f| f.crate_name.clone()).collect();

        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        for (fi, ff) in facts.iter().enumerate() {
            for (gi, f) in ff.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }

        let reaches_output = compute_reaches_output(&facts, &by_name, &crates);
        let edges = build_lock_edges(files, &facts, &by_name, &crates);

        Workspace {
            facts,
            by_name,
            crates,
            edges,
            reaches_output,
        }
    }

    /// Elementary cycles in the lock graph, each as the ordered edge list
    /// closing the loop. Cycles are reported once, rooted at their
    /// lexicographically smallest lock id, so output is deterministic.
    pub fn cycles(&self) -> Vec<Vec<&LockEdge>> {
        // Adjacency: lock → outgoing edges, deterministic order.
        let mut adj: HashMap<&str, Vec<&LockEdge>> = HashMap::new();
        for e in &self.edges {
            adj.entry(e.held.as_str()).or_default().push(e);
        }
        for v in adj.values_mut() {
            v.sort_by(|a, b| (&a.acquired, &a.anchor_line).cmp(&(&b.acquired, &b.anchor_line)));
        }
        let mut roots: Vec<&str> = adj.keys().copied().collect();
        roots.sort();

        let mut cycles: Vec<Vec<&LockEdge>> = Vec::new();
        let mut seen: Vec<Vec<String>> = Vec::new();
        for root in roots {
            // DFS from `root`, only visiting locks >= root so each cycle is
            // found exactly once (rooted at its smallest node).
            let mut stack: Vec<(&str, Vec<&LockEdge>)> = vec![(root, Vec::new())];
            while let Some((node, path)) = stack.pop() {
                if path.len() > 8 {
                    continue; // cycle length bound; workspace graphs are tiny
                }
                for e in adj.get(node).into_iter().flatten() {
                    if e.acquired.as_str() == root {
                        let mut cyc = path.clone();
                        cyc.push(e);
                        let key: Vec<String> = cyc.iter().map(|e| e.acquired.clone()).collect();
                        let mut norm = key.clone();
                        norm.sort();
                        if !seen.contains(&norm) {
                            seen.push(norm);
                            cycles.push(cyc);
                        }
                    } else if e.acquired.as_str() > root
                        && !path.iter().any(|p| p.acquired == e.acquired)
                    {
                        let mut next = path.clone();
                        next.push(e);
                        stack.push((e.acquired.as_str(), next));
                    }
                }
            }
        }
        cycles
    }

    /// Renders the full lock graph as JSON for the `lock-graph.json`
    /// review artifact: nodes, edges (with both sites), and cycles.
    pub fn lock_graph_json(&self) -> String {
        let mut nodes: Vec<&str> = Vec::new();
        for e in &self.edges {
            for n in [e.held.as_str(), e.acquired.as_str()] {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
        }
        nodes.sort_unstable();

        let mut out = String::from("{\n  \"nodes\": [");
        for (i, n) in nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push_str("],\n  \"edges\": [\n");
        let mut edges: Vec<&LockEdge> = self.edges.iter().collect();
        edges.sort_by(|a, b| {
            (&a.held, &a.acquired, &a.held_site).cmp(&(&b.held, &b.acquired, &b.held_site))
        });
        for (i, e) in edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"held\": \"{}\", \"acquired\": \"{}\", \"held_site\": \"{}\", \
                 \"acquired_site\": \"{}\", \"via\": \"{}\"}}{}\n",
                json_escape(&e.held),
                json_escape(&e.acquired),
                json_escape(&e.held_site),
                json_escape(&e.acquired_site),
                json_escape(&e.via),
                if i + 1 < edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"cycles\": [\n");
        let cycles = self.cycles();
        for (i, cyc) in cycles.iter().enumerate() {
            let path: Vec<String> = std::iter::once(cyc[0].held.clone())
                .chain(cyc.iter().map(|e| e.acquired.clone()))
                .collect();
            out.push_str(&format!(
                "    [{}]{}\n",
                path.iter()
                    .map(|p| format!("\"{}\"", json_escape(p)))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 < cycles.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A shortest call chain (as fn names) from `from` to any sink-marked
    /// function, for U1L008 diagnostics. Returns `None` when the function
    /// itself is the sink.
    pub fn sink_witness(&self, from: FnId) -> Option<Vec<String>> {
        if self.facts[from.0].fns[from.1].sink_mark {
            return None;
        }
        // BFS forward over call edges.
        let mut queue = std::collections::VecDeque::new();
        let mut visited: Vec<(FnId, Option<usize>)> = Vec::new();
        queue.push_back(from);
        visited.push((from, None));
        while let Some(cur) = queue.pop_front() {
            let cur_pos = visited.iter().position(|(id, _)| *id == cur).unwrap();
            let cur_owner = self.facts[cur.0].fns[cur.1].owner.clone();
            for call in &self.facts[cur.0].fns[cur.1].calls {
                for callee in resolve(
                    &self.by_name,
                    &self.facts,
                    &self.crates,
                    cur.0,
                    cur_owner.as_deref(),
                    call,
                ) {
                    if visited.iter().any(|(id, _)| *id == callee) {
                        continue;
                    }
                    visited.push((callee, Some(cur_pos)));
                    if self.facts[callee.0].fns[callee.1].sink_mark {
                        // Reconstruct path.
                        let mut names = vec![self.facts[callee.0].fns[callee.1].name.clone()];
                        let mut p = Some(visited.len() - 1);
                        while let Some(idx) = p {
                            let (id, parent) = visited[idx];
                            if id != callee {
                                names.push(self.facts[id.0].fns[id.1].name.clone());
                            }
                            p = parent;
                        }
                        names.reverse();
                        return Some(names);
                    }
                    queue.push_back(callee);
                }
            }
        }
        None
    }
}

/// Fixed-point: a function reaches output when sink-marked or when any
/// resolvable call targets a function that reaches output.
fn compute_reaches_output(
    facts: &[FileFacts],
    by_name: &HashMap<String, Vec<FnId>>,
    crates: &[Option<String>],
) -> Vec<Vec<bool>> {
    let mut reaches: Vec<Vec<bool>> = facts
        .iter()
        .map(|ff| ff.fns.iter().map(|f| f.sink_mark).collect())
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..facts.len() {
            for gi in 0..facts[fi].fns.len() {
                if reaches[fi][gi] {
                    continue;
                }
                let owner = facts[fi].fns[gi].owner.clone();
                let hits = facts[fi].fns[gi].calls.iter().any(|c| {
                    resolve(by_name, facts, crates, fi, owner.as_deref(), c)
                        .iter()
                        .any(|&(cf, cg)| reaches[cf][cg])
                });
                if hits {
                    reaches[fi][gi] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return reaches;
        }
    }
}

/// Builds the lock graph: direct edges (guard live range contains a second
/// acquisition) plus one level of call propagation (guard live range
/// contains a call to a function that acquires).
fn build_lock_edges(
    files: &[SourceFile],
    facts: &[FileFacts],
    by_name: &HashMap<String, Vec<FnId>>,
    crates: &[Option<String>],
) -> Vec<LockEdge> {
    let mut edges: Vec<LockEdge> = Vec::new();
    let push = |e: LockEdge, edges: &mut Vec<LockEdge>| {
        let dup = edges.iter().any(|x| {
            x.held == e.held
                && x.acquired == e.acquired
                && x.anchor_file == e.anchor_file
                && x.anchor_line == e.anchor_line
        });
        if !dup {
            edges.push(e);
        }
    };

    for (fi, ff) in facts.iter().enumerate() {
        let path = &files[fi].rel_path;
        for f in &ff.fns {
            for held in &f.acquisitions {
                let range = held.live_first..=held.live_last;
                // Direct: another acquisition inside the live range.
                for second in &f.acquisitions {
                    if second.tok > held.tok && range.contains(&second.tok) {
                        push(
                            LockEdge {
                                held: held.lock.clone(),
                                acquired: second.lock.clone(),
                                held_site: format!("{path}:{}", held.line),
                                acquired_site: format!("{path}:{}", second.line),
                                anchor_file: fi,
                                anchor_line: second.line,
                                via: f.name.clone(),
                            },
                            &mut edges,
                        );
                    }
                }
                // One call level: callee's acquisitions count as taken while
                // the guard is held.
                for call in &f.calls {
                    if call.tok <= held.tok || !range.contains(&call.tok) {
                        continue;
                    }
                    for (cf, cg) in resolve(by_name, facts, crates, fi, f.owner.as_deref(), call) {
                        if (cf, cg) == (fi, f.fn_idx) {
                            continue; // self-recursion
                        }
                        let callee = &facts[cf].fns[cg];
                        for acq in &callee.acquisitions {
                            push(
                                LockEdge {
                                    held: held.lock.clone(),
                                    acquired: acq.lock.clone(),
                                    held_site: format!("{path}:{}", held.line),
                                    acquired_site: format!("{}:{}", files[cf].rel_path, acq.line),
                                    anchor_file: fi,
                                    anchor_line: call.line,
                                    via: format!("{} -> {}", f.name, callee.name),
                                },
                                &mut edges,
                            );
                        }
                    }
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn ws(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, Workspace) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let w = Workspace::build(&files);
        (files, w)
    }

    #[test]
    fn direct_cycle_is_found() {
        let src = r#"
fn ab(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
fn ba(&self) {
    let g = self.beta.lock();
    let h = self.alpha.lock();
}
"#;
        let (_, w) = ws(&[("crates/u1-x/src/l.rs", src)]);
        assert_eq!(w.edges.len(), 2);
        let cycles = w.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let src = r#"
fn one(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
fn two(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
"#;
        let (_, w) = ws(&[("crates/u1-x/src/l.rs", src)]);
        // One alpha -> beta edge per acquisition site, but no cycle.
        assert_eq!(w.edges.len(), 2);
        assert!(w.cycles().is_empty());
    }

    #[test]
    fn one_level_call_propagation_closes_cycle() {
        let a = r#"
fn outer(&self) {
    let g = self.alpha.lock();
    helper();
}
"#;
        let b = r#"
fn helper(&self) {
    let g = self.beta.lock();
    let h = self.alpha.lock();
}
"#;
        // Same crate (different files), so `self.alpha` names one lock.
        let (_, w) = ws(&[("crates/u1-x/src/a.rs", a), ("crates/u1-x/src/b.rs", b)]);
        // outer: alpha -> beta and alpha -> alpha (propagated through
        // helper); helper: beta -> alpha (direct). Both alpha -> beta ->
        // alpha and the propagated self-edge are cycles.
        assert_eq!(w.edges.len(), 3, "{:?}", w.edges);
        let cycles = w.cycles();
        assert!(
            cycles
                .iter()
                .any(|c| c.len() == 2 && c.iter().any(|e| e.via.contains("helper"))),
            "{cycles:?}"
        );
    }

    #[test]
    fn cross_crate_same_field_name_stays_distinct() {
        let a = "fn f(&self) { let g = self.alpha.lock(); helper(); }\n";
        let b = "fn helper(&self) { let g = self.alpha.lock(); }\n";
        let (_, w) = ws(&[("crates/u1-x/src/a.rs", a), ("crates/u1-y/src/b.rs", b)]);
        // u1-x/alpha -> u1-y/alpha is an edge, not a self-loop cycle.
        assert_eq!(w.edges.len(), 1);
        assert!(w.cycles().is_empty());
    }

    #[test]
    fn temporaries_do_not_create_edges() {
        let src = r#"
fn f(&self) {
    self.alpha.lock().insert(k, v);
    self.beta.lock().insert(k, v);
}
"#;
        let (_, w) = ws(&[("crates/u1-x/src/l.rs", src)]);
        assert!(w.edges.is_empty(), "{:?}", w.edges);
    }

    #[test]
    fn reach_closure_is_transitive() {
        let src = r#"
fn leaf(&self) -> u64 { 7 }
fn mid(&self) { leaf(); }
fn sink(&self) { mid(); emit(id, human, json); }
fn island(&self) { leaf(); }
"#;
        let (_, w) = ws(&[("crates/u1-x/src/l.rs", src)]);
        let names: Vec<(&str, bool)> = w.facts[0]
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), w.reaches_output[0][i]))
            .collect();
        assert_eq!(
            names,
            vec![
                ("leaf", false),
                ("mid", false),
                ("sink", true),
                ("island", false)
            ]
        );
    }

    #[test]
    fn lock_graph_json_is_well_formed() {
        let src = r#"
fn ab(&self) {
    let g = self.alpha.lock();
    let h = self.beta.lock();
}
"#;
        let (_, w) = ws(&[("crates/u1-x/src/l.rs", src)]);
        let json = w.lock_graph_json();
        assert!(json.contains("\"u1-x/alpha\""));
        assert!(json.contains("\"held\": \"u1-x/alpha\""));
        assert!(json.contains("\"cycles\": ["));
    }
}
