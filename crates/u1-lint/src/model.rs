//! Source-file model: lexed tokens plus the structural spans rules need —
//! test-only regions (`#[cfg(test)]` mods, `#[test]` fns), function bodies
//! (with the `async` flag), and the escape-hatch suppressions.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::path::{Path, PathBuf};

/// Inclusive token-index span with its line range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub first_tok: usize,
    pub last_tok: usize,
    pub first_line: usize,
    pub last_line: usize,
}

impl Span {
    pub fn contains_line(&self, line: usize) -> bool {
        (self.first_line..=self.last_line).contains(&line)
    }

    pub fn contains_tok(&self, idx: usize) -> bool {
        (self.first_tok..=self.last_tok).contains(&idx)
    }
}

/// A function item with its body span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub is_async: bool,
    /// Token index of the `fn` keyword: the signature (incl. return type)
    /// spans `header_tok..body.first_tok`.
    pub header_tok: usize,
    /// Enclosing `impl` type name (`Stripe` for `impl<T> Stripe<T>`,
    /// the type after `for` in trait impls), `None` for free functions.
    pub owner: Option<String>,
    pub body: Span,
}

/// An `// u1-lint: allow(<rule>) — <reason>` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub line: usize,
    pub rule: String,
    pub has_reason: bool,
    /// True when the comment is alone on its line (no code tokens): only
    /// then does it cover the following line; a trailing comment covers
    /// its own line only.
    pub standalone: bool,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Crate directory name (`u1-proto`), when under `crates/`.
    pub crate_name: Option<String>,
    /// File stem (`codec` for `codec.rs`).
    pub stem: String,
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub test_spans: Vec<Span>,
    pub fns: Vec<FnSpan>,
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let tokens = lexed.tokens;
        let test_spans = find_test_spans(&tokens);
        let fns = find_fns(&tokens);
        let suppressions = find_suppressions(&lexed.comments, &tokens);
        let path = Path::new(rel_path);
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            stem: path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default(),
            lines: src.lines().map(str::to_string).collect(),
            tokens,
            comments: lexed.comments,
            test_spans,
            fns,
            suppressions,
        }
    }

    /// True when the token at `idx` falls inside test-only code.
    pub fn is_test_tok(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains_tok(idx))
    }

    /// The trimmed source line (1-based), for baseline keys.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// True when a suppression for `rule` covers `line` (same line or the
    /// line directly above). Suppressions without a reason do not count —
    /// the hatch requires justification by design.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            s.has_reason
                && (s.rule == rule || s.rule == "all")
                && (s.line == line || (s.standalone && s.line + 1 == line))
        })
    }
}

fn find_suppressions(comments: &[Comment], tokens: &[Token]) -> Vec<Suppression> {
    comments
        .iter()
        .filter_map(|c| {
            let rest = c.text.strip_prefix("u1-lint:")?.trim_start();
            let rest = rest.strip_prefix("allow")?.trim_start();
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            // Anything after the `)` beyond separator dashes counts as the
            // required reason text.
            let reason = rest[close + 1..]
                .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
                .trim();
            Some(Suppression {
                line: c.line,
                rule,
                has_reason: !reason.is_empty(),
                standalone: !tokens.iter().any(|t| t.line == c.line),
            })
        })
        .collect()
}

/// Finds the matching close brace for the open brace at `open`, returning
/// its token index.
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

fn span_between(tokens: &[Token], first: usize, last: usize) -> Span {
    Span {
        first_tok: first,
        last_tok: last,
        first_line: tokens[first].line,
        last_line: tokens[last].line,
    }
}

/// Collects the body spans of items annotated `#[test]`, `#[cfg(test)]`, or
/// any attribute whose argument list mentions `test` (covers
/// `#[cfg(any(test, feature = "x"))]` and `#[tokio::test]`).
fn find_test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('[')) {
            let close = matching_bracket(tokens, i + 1);
            let attr = &tokens[i + 1..=close];
            let mentions_test = attr.iter().any(|t| t.kind.is_ident("test"))
                && !attr.iter().any(|t| t.kind.is_ident("not"));
            if mentions_test {
                // The annotated item's body is the next brace group; a `;`
                // first means a braceless item (e.g. `mod tests;`) — skip.
                if let Some(open) = (close + 1..tokens.len())
                    .find(|&j| tokens[j].kind.is_punct('{') || tokens[j].kind.is_punct(';'))
                {
                    if tokens[open].kind.is_punct('{') {
                        let end = matching_brace(tokens, open);
                        spans.push(span_between(tokens, i, end));
                        i = end + 1;
                        continue;
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// `impl` blocks as (body open brace, body close brace, type name). The
/// type is the last path segment before the body (after `for` in trait
/// impls), ignoring generics and where clauses.
fn find_impl_owners(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].kind.is_ident("impl") {
            i += 1;
            continue;
        }
        let mut angle = 0i64;
        let mut owner: Option<String> = None;
        let mut in_where = false;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('{') if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                TokenKind::Punct(';') => break,
                TokenKind::Ident(id) if angle <= 0 && !in_where => {
                    if id == "for" {
                        owner = None;
                    } else if id == "where" {
                        in_where = true;
                    } else {
                        owner = Some(id.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        match (open, owner) {
            (Some(open), Some(owner)) => {
                let close = matching_brace(tokens, open);
                out.push((open, close, owner));
                i = open + 1; // impls don't nest; fns inside are assigned below
            }
            _ => i = j + 1,
        }
    }
    out
}

/// Finds every `fn` item and its body, noting whether the header carries
/// `async` and which `impl` block (if any) owns it.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let impls = find_impl_owners(tokens);
    let mut fns = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.kind.is_ident("fn") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        // `async` appears among the modifiers directly before `fn`
        // (`pub async unsafe extern "C" fn …`). Walk back over modifiers.
        let mut j = i;
        let mut is_async = false;
        while j > 0 {
            j -= 1;
            match &tokens[j].kind {
                TokenKind::Ident(m)
                    if ["pub", "const", "unsafe", "extern", "async"].contains(&m.as_str()) =>
                {
                    if m == "async" {
                        is_async = true;
                    }
                }
                TokenKind::Text | TokenKind::Punct(')') | TokenKind::Punct('(') => {}
                _ => break,
            }
        }
        // Body: first `{` after the signature, skipping any `->` return
        // type and where clause (neither contains braces in this codebase's
        // style; const-generic braces would need a real parser).
        if let Some(open) = (i + 2..tokens.len())
            .find(|&k| tokens[k].kind.is_punct('{') || tokens[k].kind.is_punct(';'))
        {
            if tokens[open].kind.is_punct('{') {
                let end = matching_brace(tokens, open);
                let owner = impls
                    .iter()
                    .find(|(o, c, _)| (*o..=*c).contains(&i))
                    .map(|(_, _, n)| n.clone());
                fns.push(FnSpan {
                    name: name.to_string(),
                    is_async,
                    header_tok: i,
                    owner,
                    body: span_between(tokens, open, end),
                });
            }
        }
    }
    fns
}

/// Walks `crates/*/src/**/*.rs` under the workspace root, skipping
/// `target/`, `vendor/`, tests, benches, and u1-lint's own fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = r#"
fn real() { work(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
"#;
        let f = SourceFile::parse("crates/u1-x/src/lib.rs", src);
        assert_eq!(f.crate_name.as_deref(), Some("u1-x"));
        let unwrap_tok = f
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(f.is_test_tok(unwrap_tok));
        let work_tok = f
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("work"))
            .expect("work token");
        assert!(!f.is_test_tok(work_tok));
    }

    #[test]
    fn async_fns_are_flagged() {
        let src = "pub async fn handler() { step().await; }\nfn sync_one() {}\n";
        let f = SourceFile::parse("crates/u1-x/src/lib.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].is_async && f.fns[0].name == "handler");
        assert!(!f.fns[1].is_async);
    }

    #[test]
    fn impl_owners_are_resolved() {
        let src = r#"
struct Stripe;
impl<T: Ord> Stripe<T> {
    fn push(&self) {}
}
impl std::fmt::Display for Stripe {
    fn fmt(&self, f: &mut Formatter) {}
}
fn free() {}
"#;
        let f = SourceFile::parse("crates/u1-x/src/lib.rs", src);
        let owners: Vec<(&str, Option<&str>)> = f
            .fns
            .iter()
            .map(|g| (g.name.as_str(), g.owner.as_deref()))
            .collect();
        assert_eq!(
            owners,
            vec![
                ("push", Some("Stripe")),
                ("fmt", Some("Stripe")),
                ("free", None)
            ]
        );
    }

    #[test]
    fn suppression_requires_reason() {
        let src = "\
let a = x.unwrap(); // u1-lint: allow(U1L001) — startup path, config is validated
let b = y.unwrap(); // u1-lint: allow(U1L001)
";
        let f = SourceFile::parse("crates/u1-x/src/lib.rs", src);
        assert!(f.is_suppressed("U1L001", 1));
        assert!(
            !f.is_suppressed("U1L001", 2),
            "reason-less hatch must not count"
        );
        assert!(!f.is_suppressed("U1L002", 1), "other rules are not covered");
    }

    #[test]
    fn suppression_on_previous_line_covers_next() {
        let src = "// u1-lint: allow(U1L002) - legacy framing\nlet n = x as u32;\n";
        let f = SourceFile::parse("crates/u1-x/src/lib.rs", src);
        assert!(f.is_suppressed("U1L002", 2));
    }
}
