//! A small Rust lexer sufficient for invariant linting.
//!
//! Produces a flat token stream (idents, punctuation, literals) with line
//! and column positions, plus the line comments needed for the
//! `// u1-lint: allow(...)` escape hatch. String/char literal contents and
//! comment bodies never leak into the token stream, so rules matching on
//! `unwrap` or `as` cannot be fooled by text inside them. Handles raw
//! strings (`r#"…"#`), byte strings, nested block comments, lifetimes vs.
//! char literals, and numeric literals with suffixes.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column of the token start.
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `as`, `unwrap`, …). Raw identifiers are
    /// stored without the `r#` prefix.
    Ident(String),
    /// Single punctuation character (`.`, `!`, `=`, `{`, …). Multi-char
    /// operators appear as consecutive tokens on the same line.
    Punct(char),
    /// Numeric literal, verbatim (`0x7F`, `1.5e3`, `42u64`).
    Number(String),
    /// String, byte-string, or char literal (content discarded).
    Text,
    /// Lifetime such as `'a` (name discarded).
    Lifetime,
}

impl TokenKind {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, TokenKind::Ident(i) if i == s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(i) => Some(i),
            _ => None,
        }
    }

    pub fn number(&self) -> Option<&str> {
        match self {
            TokenKind::Number(n) => Some(n),
            _ => None,
        }
    }
}

/// A `//` comment, kept for escape-hatch matching.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    /// Text after the `//`, trimmed.
    pub text: String,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(b'"'),
                b'\'' => self.char_or_lifetime(),
                b if b.is_ascii_digit() => self.number(),
                b if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                _ => {
                    self.push(TokenKind::Punct(b as char), self.pos);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn col_at(&self, start: usize) -> usize {
        start - self.line_start + 1
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.out.tokens.push(Token {
            kind,
            line: self.line,
            col: self.col_at(start),
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start.min(self.pos)..self.pos])
            .trim_start_matches(['/', '!'])
            .trim()
            .to_string();
        self.out.comments.push(Comment {
            line: self.line,
            text,
        });
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while self.pos < self.src.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if self.peek(0) == Some(b'\n') {
                    self.line += 1;
                    self.line_start = self.pos + 1;
                }
                self.pos += 1;
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, and raw idents
    /// `r#ident`. Returns false when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let mut look = self.pos;
        let mut raw = false;
        if self.src[look] == b'b' {
            look += 1;
        }
        if self.src.get(look) == Some(&b'r') {
            raw = true;
            look += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(look) == Some(&b'#') {
            hashes += 1;
            look += 1;
        }
        match self.src.get(look) {
            Some(&b'"') if raw || hashes == 0 => {
                self.pos = look + 1;
                if raw {
                    self.raw_string_tail(hashes);
                } else {
                    self.pos = start + 1; // plain b"…"
                    self.string(b'"');
                    return true;
                }
                let col_start = start;
                self.push_at_line_of(TokenKind::Text, col_start);
                true
            }
            Some(&b'\'') if self.src[start] == b'b' && !raw && hashes == 0 => {
                self.pos = start + 1;
                self.char_or_lifetime();
                true
            }
            Some(c) if raw && hashes == 1 && (c.is_ascii_alphabetic() || *c == b'_') => {
                // Raw identifier r#foo: lex as the plain identifier.
                self.pos = look;
                self.ident();
                true
            }
            _ => {
                self.ident();
                true
            }
        }
    }

    fn push_at_line_of(&mut self, kind: TokenKind, start: usize) {
        // Multi-line literals report their starting position, which may be
        // on an earlier line; the simple approximation (current line) is
        // fine for diagnostics because rules never fire inside literals.
        self.push(kind, start.max(self.line_start));
    }

    fn raw_string_tail(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.line_start = self.pos + 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.src.get(self.pos + 1 + matched) == Some(&b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    fn string(&mut self, quote: u8) {
        let start = self.pos;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.line_start = self.pos + 1;
                    self.pos += 1;
                }
                b if b == quote => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push_at_line_of(TokenKind::Text, start);
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        // `'a` with no closing quote is a lifetime; `'a'` / `'\n'` a char.
        let mut look = self.pos + 1;
        if self.src.get(look) == Some(&b'\\') {
            // Definitely a char literal: consume through the closing quote.
            self.pos = look;
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                if self.src[self.pos] == b'\\' {
                    self.pos += 1;
                }
                self.pos += 1;
            }
            self.pos += 1;
            self.push(TokenKind::Text, start);
            return;
        }
        // Consume one (possibly multi-byte) character.
        look += 1;
        while self.src.get(look).is_some_and(|b| b & 0xC0 == 0x80) {
            look += 1;
        }
        if self.src.get(look) == Some(&b'\'') {
            self.pos = look + 1;
            self.push(TokenKind::Text, start);
        } else {
            // Lifetime: consume the identifier part.
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, start);
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let hex = self.peek(0) == Some(b'0')
            && matches!(
                self.peek(1),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
            );
        if hex {
            self.pos += 2;
        }
        while let Some(b) = self.peek(0) {
            let more = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()))
                || ((b == b'+' || b == b'-')
                    && matches!(
                        self.src.get(self.pos.wrapping_sub(1)),
                        Some(b'e') | Some(b'E')
                    )
                    && !hex);
            if !more {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Number(text), start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r#"
            let a = "x.unwrap()"; // result.unwrap() here is fine
            /* block .unwrap() comment /* nested */ still comment */
            let b = 'u';
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = r##"fn f<'a>(s: &'a str) -> &'a str { let _ = r#"raw "quoted" body"#; s }"##;
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "fn a() {}\nfn b() {}\n\nfn c() {}\n";
        let lexed = lex(src);
        let fn_lines: Vec<usize> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind.is_ident("fn"))
            .map(|t| t.line)
            .collect();
        assert_eq!(fn_lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1; // u1-lint: allow(U1L001) — reason\n// another\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.starts_with("u1-lint:"));
    }

    #[test]
    fn numbers_keep_suffix_and_base() {
        let kinds: Vec<String> = lex("0x7F_u8 1.5e-3 42usize")
            .tokens
            .into_iter()
            .filter_map(|t| t.kind.number().map(str::to_string))
            .collect();
        assert_eq!(kinds, vec!["0x7F_u8", "1.5e-3", "42usize"]);
    }
}
