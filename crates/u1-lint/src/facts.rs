//! Per-function concurrency facts, extracted from the token stream.
//!
//! This is the model layer under rules U1L006–U1L008: for every `fn` in a
//! file it records
//!
//! * **lock acquisitions** — `<recv>.lock()` / `.read()` / `.write()` with
//!   empty argument lists (the std / parking_lot guard constructors), each
//!   with a crate-scoped lock identity derived from the receiver path and a
//!   token-level **guard live range** (binding → end of enclosing block for
//!   `let`-bound guards, statement or scrutinee block for temporaries,
//!   truncated at `drop(guard)`);
//! * **calls** — bare `foo(..)`, `self.foo(..)` / `Self::foo(..)`, and
//!   `Type::foo(..)` sites for the approximate call graph (method calls on
//!   other receivers are dropped — see [`CallQual`]);
//! * **blocking sites** — file/socket I/O, `thread::sleep`, `.join()`,
//!   channel `recv`;
//! * **hash-ordered iteration sites** — `.iter()` / `.keys()` / … on
//!   receivers whose declared type resolves to `HashMap` / `HashSet` /
//!   `FxHashMap` / `FxHashSet` (through `Arc`/`Mutex`/`RwLock` wrappers),
//!   plus `for … in &map` loops;
//! * **wall-clock / OS-entropy sites** — `SystemTime::now`, `thread_rng`,
//!   `OsRng`, `from_entropy`, `from_os_rng`;
//! * an **output-sink mark** — whether the signature or body mentions trace
//!   emission (`TraceRecord`, `record*` sink methods), `DriverReport`,
//!   `EngineReport`, or JSON bench output (`json!`, `serde_json`, `emit`).
//!
//! Everything is token-level and approximate; DESIGN.md §12 catalogs the
//! known false-negative classes (guards returned from functions, guards
//! reborrowed through locals, iteration over collections typed in another
//! file).

use crate::lexer::TokenKind;
use crate::model::{matching_brace, FnSpan, SourceFile};

/// Lock-guard constructor methods: empty-argument `.lock()` / `.read()` /
/// `.write()`.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Method-chain links that pass a guard through unchanged (std poisoning
/// adapters); a binding fed through only these still holds the guard.
const GUARD_CHAIN: &[&str] = &["unwrap", "expect"];

/// Idents that mark a function as feeding trace/report/JSON output.
const SINK_TYPE_IDENTS: &[&str] = &["TraceRecord", "DriverReport", "EngineReport", "FaultFold"];

/// Sink *method* calls (trace emission and bench JSON output).
const SINK_CALL_IDENTS: &[&str] = &[
    "record",
    "record_batch",
    "record_batch_owned",
    "record_run",
    "emit",
    "serde_json",
];

/// Hash-ordered collection type names (std and the vendored fxhash).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Transparent wrappers to look through when resolving a declared type.
const TYPE_WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Cell", "Option",
];

/// Iteration methods whose visit order follows the hasher.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// One lock acquisition.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Crate-scoped lock identity, e.g. `u1-trace/stripes[]`.
    pub lock: String,
    /// Receiver text for diagnostics, e.g. `self.stripes[_].lock()`.
    pub display: String,
    /// Token index of the acquisition method ident.
    pub tok: usize,
    pub line: usize,
    pub col: usize,
    /// Binding name when `let`-bound (`None` for temporaries and
    /// `match`/`if let` scrutinees).
    pub guard_name: Option<String>,
    /// Live range of the guard, as an inclusive token range.
    pub live_first: usize,
    pub live_last: usize,
}

/// How a call site is qualified; drives name resolution in the call graph.
/// Method calls on anything other than a bare `self` receiver are *not*
/// recorded — with no type information they overwhelmingly hit std
/// collection methods (`push`, `len`, `insert`), and resolving those by
/// name to same-named workspace fns floods the graph with bogus edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallQual {
    /// `foo(..)` — resolves to free functions named `foo`.
    Bare,
    /// `self.foo(..)` / `Self::foo(..)` — resolves within the caller's
    /// `impl` block (same crate, same owner type).
    SelfMethod,
    /// `Type::foo(..)` — resolves to `foo` in any `impl Type`.
    Typed(String),
}

/// A call site the graph can resolve.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub qual: CallQual,
    pub tok: usize,
    pub line: usize,
}

/// A blocking operation site (I/O, sleep, join, channel recv).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    pub what: &'static str,
    pub tok: usize,
    pub line: usize,
    pub col: usize,
}

/// A hash-ordered iteration site.
#[derive(Debug, Clone)]
pub struct IterSite {
    /// Receiver text, e.g. `self.views.read().values()`.
    pub display: String,
    pub tok: usize,
    pub line: usize,
    pub col: usize,
}

/// A wall-clock / OS-entropy site.
#[derive(Debug, Clone)]
pub struct EntropySite {
    pub what: &'static str,
    pub tok: usize,
    pub line: usize,
    pub col: usize,
}

/// All facts for one function.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    /// Enclosing `impl` type, for `self.method()` call resolution.
    pub owner: Option<String>,
    /// Index into `SourceFile::fns`.
    pub fn_idx: usize,
    pub acquisitions: Vec<Acquisition>,
    pub calls: Vec<CallSite>,
    pub blocking: Vec<BlockingSite>,
    pub hash_iters: Vec<IterSite>,
    pub entropy: Vec<EntropySite>,
    /// Signature or body mentions a trace/report/JSON sink.
    pub sink_mark: bool,
}

/// Facts for every function in a file.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub fns: Vec<FnFacts>,
}

pub fn extract(file: &SourceFile) -> FileFacts {
    let field_names = hash_field_names(file);
    let fns = file
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let names = hash_names_for_fn(file, f, &field_names);
            extract_fn(file, i, f, &names)
        })
        .collect();
    FileFacts { fns }
}

fn extract_fn(file: &SourceFile, fn_idx: usize, f: &FnSpan, hash_names: &[String]) -> FnFacts {
    let toks = &file.tokens;
    let last = f.body.last_tok.min(toks.len().saturating_sub(1));
    let mut facts = FnFacts {
        name: f.name.clone(),
        owner: f.owner.clone(),
        fn_idx,
        acquisitions: Vec::new(),
        calls: Vec::new(),
        blocking: Vec::new(),
        hash_iters: Vec::new(),
        entropy: Vec::new(),
        sink_mark: false,
    };

    // Sink mark: scan the whole item (signature + body) so `-> DriverReport`
    // return types count.
    for i in f.header_tok..=last {
        let Some(name) = toks[i].kind.ident() else {
            continue;
        };
        if SINK_TYPE_IDENTS.contains(&name) {
            facts.sink_mark = true;
            break;
        }
        let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('))
            || (toks.get(i + 1).is_some_and(|t| t.kind.is_punct('!'))
                && toks.get(i + 2).is_some_and(|t| t.kind.is_punct('(')));
        if (SINK_CALL_IDENTS.contains(&name) && called) || name == "serde_json" {
            facts.sink_mark = true;
            break;
        }
        // `json!({...})` macro (u1-bench experiments).
        if name == "json" && toks.get(i + 1).is_some_and(|t| t.kind.is_punct('!')) {
            facts.sink_mark = true;
            break;
        }
    }

    for i in f.body.first_tok..=last {
        if file.is_test_tok(i) {
            continue;
        }
        let Some(name) = toks[i].kind.ident() else {
            continue;
        };
        let next_is_open = toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('));
        let prev_is_dot = i > 0 && toks[i - 1].kind.is_punct('.');

        // Calls, for the approximate call graph: bare `foo(..)`,
        // `self.foo(..)` / `Self::foo(..)`, and `Type::foo(..)`. Method
        // calls on other receivers are deliberately dropped (see
        // [`CallQual`]). Keyword heads of expressions (`if (..)`) never lex
        // as calls in this codebase's style; filter the obvious ones anyway.
        if next_is_open
            && !matches!(
                name,
                "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "Some" | "Ok" | "Err"
            )
            && !(i > 0 && toks[i - 1].kind.is_ident("fn"))
        {
            let qual = if prev_is_dot {
                if i >= 2 && toks[i - 2].kind.is_ident("self") {
                    Some(CallQual::SelfMethod)
                } else {
                    None // method on an unknown-typed receiver
                }
            } else if i >= 2 && toks[i - 1].kind.is_punct(':') && toks[i - 2].kind.is_punct(':') {
                match toks.get(i.wrapping_sub(3)).and_then(|t| t.kind.ident()) {
                    Some("Self") => Some(CallQual::SelfMethod),
                    Some(t) => Some(CallQual::Typed(t.to_string())),
                    None => None,
                }
            } else {
                Some(CallQual::Bare)
            };
            if let Some(qual) = qual {
                facts.calls.push(CallSite {
                    name: name.to_string(),
                    qual,
                    tok: i,
                    line: toks[i].line,
                });
            }
        }

        // Lock acquisitions: `<recv>.{lock,read,write}()` with no args.
        if prev_is_dot
            && ACQUIRE_METHODS.contains(&name)
            && next_is_open
            && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(')'))
        {
            if let Some(acq) = acquisition_at(file, f, i, name) {
                facts.acquisitions.push(acq);
            }
        }

        // Blocking sites.
        if let Some(site) = blocking_at(file, i, name) {
            facts.blocking.push(site);
        }

        // Hash-ordered iteration: `<recv>.iter()`-family where some receiver
        // segment is hash-typed, or the receiver is a Hash* type directly.
        if prev_is_dot && ITER_METHODS.contains(&name) && next_is_open {
            let (segs, display) = receiver_chain(file, i);
            let hashy = segs
                .iter()
                .any(|s| hash_names.iter().any(|h| h == s) || HASH_TYPES.contains(&s.as_str()));
            if hashy {
                facts.hash_iters.push(IterSite {
                    display: format!("{display}.{name}()"),
                    tok: i,
                    line: toks[i].line,
                    col: toks[i].col,
                });
            }
        }

        // `for pat in [&][mut] <expr>` where the expr references a
        // hash-typed name *without* an explicit iteration method (those are
        // caught above). The expr runs from `in` to the loop `{`.
        if name == "in" && !prev_is_dot {
            if let Some(site) = for_loop_iter(file, i, hash_names) {
                facts.hash_iters.push(site);
            }
        }

        // Wall-clock / OS-entropy.
        if let Some(site) = entropy_at(file, i, name) {
            facts.entropy.push(site);
        }
    }

    facts
}

/// Builds the acquisition record for the `.lock()`/`.read()`/`.write()`
/// method ident at token `i`.
fn acquisition_at(file: &SourceFile, f: &FnSpan, i: usize, method: &str) -> Option<Acquisition> {
    let toks = &file.tokens;
    let (segs, display) = receiver_chain(file, i);
    if segs.is_empty() {
        return None;
    }
    let crate_tag = file.crate_name.as_deref().unwrap_or("ws");
    let lock = format!("{crate_tag}/{}", segs.join("."));
    let body_last = f.body.last_tok.min(toks.len().saturating_sub(1));

    // Where does the receiver expression start? (First token of the chain.)
    let recv_first = receiver_first_tok(file, i);

    // Classify the statement this acquisition sits in.
    let after_close = i + 3; // token after `()`
    let (guard_name, live_first, live_last) =
        classify_range(file, f, recv_first, i, after_close, body_last);

    Some(Acquisition {
        lock,
        display: format!("{display}.{method}()"),
        tok: i,
        line: toks[i].line,
        col: toks[i].col,
        guard_name,
        live_first,
        live_last,
    })
}

/// Determines the guard's binding (if any) and its token live range.
fn classify_range(
    file: &SourceFile,
    f: &FnSpan,
    recv_first: usize,
    _acq_tok: usize,
    after_close: usize,
    body_last: usize,
) -> (Option<String>, usize, usize) {
    let toks = &file.tokens;

    // `match <recv>.lock()` / `if let P = <recv>.lock()` / `while let …`:
    // the guard lives through the following brace block (scrutinee
    // temporaries extend for `match`; conservative for `if let`, where an
    // over-long range can only add edges that an `allow` documents).
    if recv_first > 0 && toks[recv_first - 1].kind.is_ident("match") {
        if let Some(open) = (after_close..=body_last).find(|&k| toks[k].kind.is_punct('{')) {
            return (None, recv_first, matching_brace(toks, open).min(body_last));
        }
    }
    // `let _ = <recv>.lock()` drops the guard immediately — fall through to
    // the temporary classification.
    if let Some((name, stmt_kind)) = let_binding_before(file, recv_first).filter(|(n, _)| n != "_")
    {
        // The binding only receives the *guard* when the chain after `()` is
        // empty or guard-preserving (`.unwrap()`, `.expect(..)`, `?`).
        let mut k = after_close;
        let mut is_guard = true;
        loop {
            match toks.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct(';')) => break,
                Some(TokenKind::Punct('?')) => k += 1,
                Some(TokenKind::Punct('.')) => {
                    let m = toks.get(k + 1).and_then(|t| t.kind.ident());
                    let open = toks.get(k + 2).is_some_and(|t| t.kind.is_punct('('));
                    if m.is_some_and(|m| GUARD_CHAIN.contains(&m)) && open {
                        // Skip over `name ( … )`.
                        let close = matching_paren(toks, k + 2).min(body_last);
                        k = close + 1;
                    } else {
                        is_guard = false;
                        break;
                    }
                }
                _ => {
                    is_guard = false;
                    break;
                }
            }
        }
        if is_guard && stmt_kind == StmtKind::Let {
            // Live range: binding statement → end of enclosing block, or
            // `drop(name)`.
            let stmt_end = k; // the `;`
            let block_end = enclosing_block_end(toks, stmt_end, body_last);
            let end = drop_site(toks, &name, stmt_end, block_end).unwrap_or(block_end);
            return (Some(name), recv_first, end);
        }
        if is_guard && stmt_kind == StmtKind::IfLet {
            // `if let Ok(g) = m.lock()` — guard covers the if-block.
            if let Some(open) = (after_close..=body_last).find(|&k2| toks[k2].kind.is_punct('{')) {
                return (
                    Some(name),
                    recv_first,
                    matching_brace(toks, open).min(body_last),
                );
            }
        }
    }

    // Temporary: lives to the end of the statement; if the statement is a
    // `for`/`match` head, the scrutinee temporary lives through the block.
    let stmt_head = statement_head(toks, recv_first, f.body.first_tok);
    let mut depth: i64 = 0;
    let mut k = after_close;
    while k <= body_last {
        match toks[k].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('{') => {
                if depth <= 0 {
                    // Block opens at statement depth: `for`/`match` heads
                    // keep the temporary alive through it.
                    if matches!(stmt_head.as_deref(), Some("for") | Some("match")) {
                        return (None, recv_first, matching_brace(toks, k).min(body_last));
                    }
                    return (None, recv_first, k.saturating_sub(1));
                }
                depth += 1;
            }
            TokenKind::Punct('}') => {
                if depth <= 0 {
                    return (None, recv_first, k.saturating_sub(1));
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth <= 0 => return (None, recv_first, k),
            _ => {}
        }
        k += 1;
    }
    (None, recv_first, body_last)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StmtKind {
    Let,
    IfLet,
}

/// If the tokens directly before `recv_first` are `let [mut] NAME =` or
/// `if/while let PAT =`, returns the bound name and statement kind.
fn let_binding_before(file: &SourceFile, recv_first: usize) -> Option<(String, StmtKind)> {
    let toks = &file.tokens;
    if recv_first < 2 || !toks[recv_first - 1].kind.is_punct('=') {
        return None;
    }
    // Walk back over the pattern: `let mut name =` or `let Ok(mut name) =`
    // (if-let / while-let). Collect the last ident in the pattern as the
    // binding.
    let mut j = recv_first - 2;
    let mut last_ident: Option<String> = None;
    let mut steps = 0;
    loop {
        match &toks[j].kind {
            TokenKind::Ident(id) if id == "let" => {
                let kind = if j > 0
                    && (toks[j - 1].kind.is_ident("if") || toks[j - 1].kind.is_ident("while"))
                {
                    StmtKind::IfLet
                } else {
                    StmtKind::Let
                };
                return last_ident.map(|n| (n, kind));
            }
            TokenKind::Ident(id) => {
                if id != "mut" && !id.chars().next().is_some_and(char::is_uppercase) {
                    last_ident.get_or_insert_with(|| id.clone());
                }
            }
            TokenKind::Punct('(')
            | TokenKind::Punct(')')
            | TokenKind::Punct(',')
            | TokenKind::Punct('_') => {}
            _ => return None,
        }
        if j == 0 || steps > 12 {
            return None;
        }
        j -= 1;
        steps += 1;
    }
}

/// First token of the statement containing `from` (token after the previous
/// `;`, `{`, or `}` at the same nesting), used to see `for`/`match` heads.
fn statement_head(toks: &[crate::lexer::Token], from: usize, body_first: usize) -> Option<String> {
    let mut depth: i64 = 0;
    let mut j = from;
    while j > body_first {
        j -= 1;
        match toks[j].kind {
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth -= 1,
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') if depth <= 0 => {
                return toks
                    .get(j + 1)
                    .and_then(|t| t.kind.ident())
                    .map(str::to_string);
            }
            _ => {}
        }
    }
    toks.get(body_first + 1)
        .and_then(|t| t.kind.ident())
        .map(str::to_string)
}

/// Token index of the `)` closing the block that contains `from` (scanning
/// forward from `from`), bounded by the fn body end.
fn enclosing_block_end(toks: &[crate::lexer::Token], from: usize, body_last: usize) -> usize {
    let mut depth: i64 = 0;
    let mut k = from;
    while k <= body_last {
        match toks[k].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            _ => {}
        }
        k += 1;
    }
    body_last
}

/// Finds `drop ( name )` between `from` and `to`; returns the token index of
/// the closing paren when present.
fn drop_site(toks: &[crate::lexer::Token], name: &str, from: usize, to: usize) -> Option<usize> {
    for k in from..to.saturating_sub(3) {
        if toks[k].kind.is_ident("drop")
            && toks[k + 1].kind.is_punct('(')
            && toks[k + 2].kind.is_ident(name)
            && toks[k + 3].kind.is_punct(')')
        {
            return Some(k + 3);
        }
    }
    None
}

fn matching_paren(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Walks the receiver chain backwards from the method ident at `i`
/// (`self.stripes[x].lock()` → segments `["stripes[]"]`, display
/// `self.stripes[_]`). `self` is consumed but not emitted. Method-call
/// segments render as `name()`; index groups as `name[]`.
fn receiver_chain(file: &SourceFile, i: usize) -> (Vec<String>, String) {
    let toks = &file.tokens;
    let mut segs: Vec<String> = Vec::new();
    let mut saw_self = false;
    // i-1 is the `.`; walk from i-2.
    let mut j = i.checked_sub(2);
    while let Some(mut k) = j {
        // Optional index group `… [ … ]`.
        let mut suffix = String::new();
        if toks[k].kind.is_punct(']') {
            let open = backward_match(toks, k, '[', ']');
            if open == 0 {
                break;
            }
            suffix = "[]".to_string();
            k = open - 1;
        } else if toks[k].kind.is_punct(')') {
            let open = backward_match(toks, k, '(', ')');
            if open == 0 {
                break;
            }
            suffix = "()".to_string();
            k = open - 1;
        }
        match toks[k].kind.ident() {
            Some("self") => {
                saw_self = true;
                break;
            }
            Some(name) => {
                segs.push(format!("{name}{suffix}"));
                // Continue over `.` or `::`.
                if k >= 1 && toks[k - 1].kind.is_punct('.') {
                    j = k.checked_sub(2);
                    continue;
                }
                if k >= 2 && toks[k - 1].kind.is_punct(':') && toks[k - 2].kind.is_punct(':') {
                    j = k.checked_sub(3);
                    continue;
                }
                break;
            }
            None => break,
        }
    }
    segs.reverse();
    let mut display = String::new();
    if saw_self {
        display.push_str("self");
    }
    for s in &segs {
        if !display.is_empty() {
            display.push('.');
        }
        display.push_str(&s.replace("[]", "[_]"));
    }
    (segs, display)
}

/// First token of the receiver chain feeding the method ident at `i`.
fn receiver_first_tok(file: &SourceFile, i: usize) -> usize {
    let toks = &file.tokens;
    let mut first = i;
    let mut j = i.checked_sub(2);
    while let Some(mut k) = j {
        if toks[k].kind.is_punct(']') {
            let open = backward_match(toks, k, '[', ']');
            if open == 0 {
                break;
            }
            k = open.saturating_sub(1);
        } else if toks[k].kind.is_punct(')') {
            let open = backward_match(toks, k, '(', ')');
            if open == 0 {
                break;
            }
            k = open.saturating_sub(1);
        }
        match toks[k].kind.ident() {
            Some(_) => {
                first = k;
                if k >= 2 && toks[k - 1].kind.is_punct('.') {
                    j = k.checked_sub(2);
                } else if k >= 3 && toks[k - 1].kind.is_punct(':') && toks[k - 2].kind.is_punct(':')
                {
                    j = k.checked_sub(3);
                } else {
                    break;
                }
            }
            None => break,
        }
    }
    first
}

/// Matching open bracket for the close bracket at `close`, scanning back.
fn backward_match(
    toks: &[crate::lexer::Token],
    close: usize,
    open_ch: char,
    close_ch: char,
) -> usize {
    let mut depth = 0i64;
    let mut k = close;
    loop {
        if toks[k].kind.is_punct(close_ch) {
            depth += 1;
        } else if toks[k].kind.is_punct(open_ch) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        if k == 0 {
            return 0;
        }
        k -= 1;
    }
}

/// Classifies the ident at `i` as a blocking operation, if it is one.
fn blocking_at(file: &SourceFile, i: usize, name: &str) -> Option<BlockingSite> {
    let toks = &file.tokens;
    let prev_is_dot = i > 0 && toks[i - 1].kind.is_punct('.');
    let next_is_open = toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('));
    let empty_args = next_is_open && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(')'));
    let site = |what: &'static str| {
        Some(BlockingSite {
            what,
            tok: i,
            line: toks[i].line,
            col: toks[i].col,
        })
    };
    match name {
        // `thread::sleep(..)` / `std::thread::sleep(..)`.
        "sleep" if next_is_open && path_seg_is(file, i, "thread") => site("thread::sleep"),
        // Thread / scope join: `.join()` with no arguments (`slice.join(sep)`
        // always has one).
        "join" if prev_is_dot && empty_args => site(".join()"),
        // Channel receive.
        "recv" if prev_is_dot && empty_args => site(".recv()"),
        "recv_timeout" if prev_is_dot && next_is_open => site(".recv_timeout(..)"),
        // File open/create.
        "open" | "create" if path_seg_is(file, i, "File") => site("File open/create"),
        "OpenOptions" => site("OpenOptions"),
        // Socket constructors / accept.
        "TcpStream" | "TcpListener" | "UdpSocket" => site("socket I/O"),
        "accept" if prev_is_dot && empty_args => site(".accept()"),
        // Stream-level reads/writes and fsync.
        "read_to_string" | "read_to_end" | "read_exact" | "write_all" | "sync_all"
        | "sync_data"
            if prev_is_dot && next_is_open =>
        {
            site("stream I/O")
        }
        // Writer flush: empty-arg `.flush()`. (TraceSink::flush is also
        // caught here on purpose — DirSink flushes real files.)
        "flush" if prev_is_dot && empty_args => site(".flush()"),
        _ => None,
    }
}

/// True when the path segment before ident `i` (over `::`) equals `seg`.
fn path_seg_is(file: &SourceFile, i: usize, seg: &str) -> bool {
    let toks = &file.tokens;
    i >= 3
        && toks[i - 1].kind.is_punct(':')
        && toks[i - 2].kind.is_punct(':')
        && toks[i - 3].kind.is_ident(seg)
}

/// Classifies the ident at `i` as a wall-clock / OS-entropy source.
fn entropy_at(file: &SourceFile, i: usize, name: &str) -> Option<EntropySite> {
    let toks = &file.tokens;
    let site = |what: &'static str| {
        Some(EntropySite {
            what,
            tok: i,
            line: toks[i].line,
            col: toks[i].col,
        })
    };
    match name {
        "now" if path_seg_is(file, i, "SystemTime") => site("SystemTime::now"),
        "thread_rng" => site("thread_rng"),
        "OsRng" => site("OsRng"),
        "from_entropy" | "from_os_rng" => site("OS-entropy RNG seeding"),
        _ => None,
    }
}

/// `for pat in <expr> {` where `<expr>` mentions a hash-typed name and no
/// explicit iteration method (those are reported at the method site).
fn for_loop_iter(file: &SourceFile, in_tok: usize, hash_names: &[String]) -> Option<IterSite> {
    let toks = &file.tokens;
    // Only `for … in`: scan back for the `for` on a short leash.
    let mut j = in_tok;
    let mut found_for = false;
    for _ in 0..10 {
        if j == 0 {
            break;
        }
        j -= 1;
        if toks[j].kind.is_ident("for") {
            found_for = true;
            break;
        }
        if matches!(toks[j].kind, TokenKind::Punct(';') | TokenKind::Punct('{')) {
            break;
        }
    }
    if !found_for {
        return None;
    }
    let mut k = in_tok + 1;
    let mut depth = 0i64;
    let mut hashy_tok: Option<usize> = None;
    let mut has_method_call = false;
    let mut display = String::new();
    while let Some(t) = toks.get(k) {
        match &t.kind {
            TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Ident(id) => {
                if hash_names.iter().any(|h| h == id) {
                    hashy_tok.get_or_insert(k);
                }
                if toks.get(k + 1).is_some_and(|t| t.kind.is_punct('(')) {
                    has_method_call = true;
                }
                if !display.is_empty() {
                    display.push('.');
                }
                display.push_str(id);
            }
            _ => {}
        }
        k += 1;
        if k > in_tok + 40 {
            break;
        }
    }
    // Method calls in the expr (`.iter()`, `.lock()`, …) are handled by the
    // method-site detector; only bare `&map` loops are reported here.
    let h = hashy_tok?;
    if has_method_call {
        return None;
    }
    Some(IterSite {
        display: format!("for _ in {display}"),
        tok: h,
        line: toks[h].line,
        col: toks[h].col,
    })
}

/// Names declared *outside* any `fn` item (struct/enum fields, consts)
/// whose type resolves to a hash-ordered collection. Field names apply
/// file-wide (`self.views` in any method).
fn hash_field_names(file: &SourceFile) -> Vec<String> {
    let toks = &file.tokens;
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if file
            .fns
            .iter()
            .any(|f| (f.header_tok..=f.body.last_tok).contains(&i))
        {
            continue;
        }
        let Some(name) = toks[i].kind.ident() else {
            continue;
        };
        let colon = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            && !(i > 0 && toks[i - 1].kind.is_punct(':'));
        if colon && type_is_hashy(toks, i + 2) && !names.iter().any(|x| x == name) {
            names.push(name.to_string());
        }
    }
    names
}

/// Names visible in one function whose declared type resolves to a
/// hash-ordered collection: the file-level field names, plus this
/// function's `name: [&mut] [wrappers<]Hash{Map,Set}…` params and
/// annotations, constructor bindings (`= HashMap::new()` /
/// `FxHashMap::default()` / turbofish collect), and one level of guard
/// propagation (`let g = <hash>.lock()` / `.read()` / `.write()` /
/// `.clone()`). Scoping is per-fn so a `counts: &HashMap` param in one
/// function does not poison a same-named `&BTreeMap` param in the next.
fn hash_names_for_fn(file: &SourceFile, f: &FnSpan, field_names: &[String]) -> Vec<String> {
    let toks = &file.tokens;
    let last = f.body.last_tok.min(toks.len().saturating_sub(1));
    let mut names: Vec<String> = field_names.to_vec();
    let push = |n: &str, names: &mut Vec<String>| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };

    for i in f.header_tok..=last {
        let Some(name) = toks[i].kind.ident() else {
            continue;
        };
        // `name : <type>` — single colon (not `::`).
        let colon = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            && !(i > 0 && toks[i - 1].kind.is_punct(':'));
        if colon && type_is_hashy(toks, i + 2) {
            push(name, &mut names);
        }
        // `let [mut] name = <ctor>` — constructor or turbofish collect.
        if name == "let" {
            if let Some((bind, rhs)) = let_name_and_rhs(toks, i) {
                if rhs_is_hashy(toks, rhs) {
                    push(&bind, &mut names);
                }
            }
        }
    }

    // One propagation round: `let g = <hash-name>…lock()/read()/write()/
    // clone()` chains re-typed as hashy (guards and clones of maps).
    for i in f.body.first_tok..=last {
        if !toks[i].kind.is_ident("let") {
            continue;
        }
        let Some((bind, rhs)) = let_name_and_rhs(toks, i) else {
            continue;
        };
        let mut k = rhs;
        let mut refs_hash = false;
        let mut only_guard_chain = true;
        while let Some(t) = toks.get(k) {
            match &t.kind {
                TokenKind::Punct(';') => break,
                TokenKind::Ident(id) => {
                    if names.iter().any(|h| h == id) {
                        refs_hash = true;
                    } else if toks.get(k + 1).is_some_and(|t| t.kind.is_punct('('))
                        && !matches!(
                            id.as_str(),
                            "lock"
                                | "read"
                                | "write"
                                | "clone"
                                | "borrow"
                                | "borrow_mut"
                                | "unwrap"
                                | "expect"
                                | "as_ref"
                                | "as_mut"
                        )
                    {
                        only_guard_chain = false;
                    }
                }
                _ => {}
            }
            k += 1;
            if k > rhs + 30 {
                break;
            }
        }
        if refs_hash && only_guard_chain {
            push(&bind, &mut names);
        }
    }

    names
}

/// For a `let` at token `i`, the bound name and the first RHS token.
fn let_name_and_rhs(toks: &[crate::lexer::Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.kind.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j)?.kind.ident()?.to_string();
    // Optional `: Type` annotation — skip to `=` at angle depth 0.
    let mut k = j + 1;
    let mut angle = 0i64;
    while let Some(t) = toks.get(k) {
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('=') if angle <= 0 => return Some((name, k + 1)),
            TokenKind::Punct(';') | TokenKind::Punct('{') => return None,
            _ => {}
        }
        k += 1;
        if k > i + 40 {
            return None;
        }
    }
    None
}

/// Resolves a type starting at `start`, looking through `&`, `mut`, and
/// transparent wrappers: is the outermost collection hash-ordered?
fn type_is_hashy(toks: &[crate::lexer::Token], start: usize) -> bool {
    let mut k = start;
    let mut hops = 0;
    loop {
        hops += 1;
        if hops > 12 {
            return false;
        }
        match toks.get(k).map(|t| &t.kind) {
            Some(TokenKind::Punct('&')) | Some(TokenKind::Lifetime) => k += 1,
            Some(TokenKind::Ident(id)) if id == "mut" => k += 1,
            Some(TokenKind::Ident(id)) if HASH_TYPES.contains(&id.as_str()) => return true,
            // descend into `Wrapper<…`
            Some(TokenKind::Ident(id))
                if TYPE_WRAPPERS.contains(&id.as_str())
                    && toks.get(k + 1).is_some_and(|t| t.kind.is_punct('<')) =>
            {
                k += 2;
            }
            // Path prefix `a::b::C` — skip over `seg ::`.
            Some(TokenKind::Ident(_))
                if toks.get(k + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|t| t.kind.is_punct(':')) =>
            {
                k += 3;
            }
            _ => return false,
        }
    }
}

/// Does the RHS starting at `rhs` construct a hash collection?
fn rhs_is_hashy(toks: &[crate::lexer::Token], rhs: usize) -> bool {
    let mut k = rhs;
    while let Some(t) = toks.get(k) {
        match &t.kind {
            TokenKind::Punct(';') => return false,
            TokenKind::Ident(id) if HASH_TYPES.contains(&id.as_str()) => return true,
            _ => {}
        }
        k += 1;
        if k > rhs + 25 {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn facts_of(src: &str) -> FileFacts {
        extract(&SourceFile::parse("crates/u1-x/src/lib.rs", src))
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let src = r#"
fn f(&self) {
    let g = self.table.lock();
    step_one();
    step_two();
}
"#;
        let f = &facts_of(src).fns[0];
        assert_eq!(f.acquisitions.len(), 1);
        let a = &f.acquisitions[0];
        assert_eq!(a.lock, "u1-x/table");
        assert_eq!(a.guard_name.as_deref(), Some("g"));
        // Both calls fall inside the live range.
        for c in f.calls.iter().filter(|c| c.name.starts_with("step")) {
            assert!(
                (a.live_first..=a.live_last).contains(&c.tok),
                "{c:?} outside {a:?}"
            );
        }
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src = r#"
fn f(&self) {
    let n = self.table.lock().len();
    after();
}
"#;
        let f = &facts_of(src).fns[0];
        let a = &f.acquisitions[0];
        assert_eq!(a.guard_name, None, "chained `.len()` consumes the guard");
        let after = f.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(!(a.live_first..=a.live_last).contains(&after.tok));
    }

    #[test]
    fn std_guard_chain_unwrap_and_question_mark_still_bind() {
        let src = r#"
fn f(&self) -> Result<(), E> {
    let g = self.table.lock().unwrap();
    let h = self.other.lock()?;
    touch();
    Ok(())
}
"#;
        let f = &facts_of(src).fns[0];
        assert_eq!(f.acquisitions.len(), 2);
        assert_eq!(f.acquisitions[0].guard_name.as_deref(), Some("g"));
        assert_eq!(f.acquisitions[1].guard_name.as_deref(), Some("h"));
        let touch = f.calls.iter().find(|c| c.name == "touch").unwrap();
        assert!((f.acquisitions[1].live_first..=f.acquisitions[1].live_last).contains(&touch.tok));
    }

    #[test]
    fn drop_truncates_live_range() {
        let src = r#"
fn f(&self) {
    let g = self.table.lock();
    early();
    drop(g);
    late();
}
"#;
        let f = &facts_of(src).fns[0];
        let a = &f.acquisitions[0];
        let early = f.calls.iter().find(|c| c.name == "early").unwrap();
        let late = f.calls.iter().find(|c| c.name == "late").unwrap();
        assert!((a.live_first..=a.live_last).contains(&early.tok));
        assert!(!(a.live_first..=a.live_last).contains(&late.tok));
    }

    #[test]
    fn nested_closure_is_inside_live_range() {
        let src = r#"
fn f(&self) {
    let g = self.outer.lock();
    items.for_each(|i| {
        let h = self.inner.lock();
    });
}
"#;
        let f = &facts_of(src).fns[0];
        assert_eq!(f.acquisitions.len(), 2);
        let (a, b) = (&f.acquisitions[0], &f.acquisitions[1]);
        assert!((a.live_first..=a.live_last).contains(&b.tok));
    }

    #[test]
    fn raw_ident_receiver_resolves() {
        let src = "fn f(&self) { let g = self.r#type.lock(); use_it(); }\n";
        let f = &facts_of(src).fns[0];
        assert_eq!(f.acquisitions[0].lock, "u1-x/type");
        assert_eq!(f.acquisitions[0].guard_name.as_deref(), Some("g"));
    }

    #[test]
    fn indexed_and_method_receivers_get_stable_ids() {
        let src = r#"
fn f(&self) {
    let a = self.stripes[i].lock();
    let b = self.shard(user).write();
    let c = self.faults.read();
}
"#;
        let locks: Vec<String> = facts_of(src).fns[0]
            .acquisitions
            .iter()
            .map(|a| a.lock.clone())
            .collect();
        assert_eq!(locks, vec!["u1-x/stripes[]", "u1-x/shard()", "u1-x/faults"]);
    }

    #[test]
    fn match_scrutinee_guard_covers_match_block() {
        let src = r#"
fn f(&self) {
    let down = match self.faults.lock() {
        Ok(g) => inspect(g),
        Err(p) => recover(p),
    };
    outside();
}
"#;
        let f = &facts_of(src).fns[0];
        let a = &f.acquisitions[0];
        let inspect = f.calls.iter().find(|c| c.name == "inspect").unwrap();
        let outside = f.calls.iter().find(|c| c.name == "outside").unwrap();
        assert!((a.live_first..=a.live_last).contains(&inspect.tok));
        assert!(!(a.live_first..=a.live_last).contains(&outside.tok));
    }

    #[test]
    fn for_scrutinee_temporary_lives_through_loop() {
        let src = r#"
fn f(&self) {
    for x in self.table.lock().iter() {
        body(x);
    }
}
"#;
        let f = &facts_of(src).fns[0];
        let a = &f.acquisitions[0];
        let body = f.calls.iter().find(|c| c.name == "body").unwrap();
        assert!((a.live_first..=a.live_last).contains(&body.tok));
    }

    #[test]
    fn blocking_sites_and_sinks_detected() {
        let src = r#"
fn f(&self) -> DriverReport {
    std::thread::sleep(d);
    handle.join();
    rx.recv();
    let f = File::open(path);
    w.write_all(buf);
    w.flush();
    report
}
"#;
        let f = &facts_of(src).fns[0];
        let whats: Vec<&str> = f.blocking.iter().map(|b| b.what).collect();
        assert_eq!(
            whats,
            vec![
                "thread::sleep",
                ".join()",
                ".recv()",
                "File open/create",
                "stream I/O",
                ".flush()"
            ]
        );
        assert!(f.sink_mark, "return type names DriverReport");
    }

    #[test]
    fn str_join_with_args_is_not_blocking() {
        let src = "fn f() { let s = parts.join(sep); }\n";
        assert!(facts_of(src).fns[0].blocking.is_empty());
    }

    #[test]
    fn hash_iteration_through_wrappers_and_guards() {
        let src = r#"
struct S { views: RwLock<HashMap<u32, Load>>, names: Vec<String> }
fn f(&self) {
    for v in self.views.read().values() { use_it(v); }
    let m = self.views.read();
    for (k, v) in m.iter() { use_it(v); }
    for n in self.names.iter() { use_it(n); }
}
"#;
        let f = &facts_of(src).fns[0];
        assert_eq!(f.hash_iters.len(), 2, "{:?}", f.hash_iters);
    }

    #[test]
    fn vec_of_hash_stripes_is_not_flagged_at_vec_level() {
        let src = r#"
struct S { shards: Vec<Mutex<HashMap<u64, Row>>> }
fn f(&self) {
    let n: usize = self.shards.iter().map(|s| s.lock().len()).sum();
}
"#;
        // `Vec<…>` iteration is deterministic; outermost-type resolution
        // must not mark `shards` hashy.
        assert!(facts_of(src).fns[0].hash_iters.is_empty());
    }

    #[test]
    fn bare_for_over_map_reference_is_flagged() {
        let src = r#"
fn f() {
    let mut m = HashMap::new();
    for (k, v) in &m { use_it(k, v); }
}
"#;
        let f = &facts_of(src).fns[0];
        assert_eq!(f.hash_iters.len(), 1);
    }

    #[test]
    fn entropy_sites_detected() {
        let src = r#"
fn f() {
    let t = SystemTime::now();
    let mut rng = thread_rng();
    let r2 = SmallRng::from_entropy();
    let fine = SmallRng::seed_from_u64(7);
}
"#;
        let whats: Vec<&str> = facts_of(src).fns[0]
            .entropy
            .iter()
            .map(|e| e.what)
            .collect();
        assert_eq!(
            whats,
            vec!["SystemTime::now", "thread_rng", "OS-entropy RNG seeding"]
        );
    }
}
