//! u1-lint: workspace analyzer enforcing U1 back-end invariants that
//! clippy cannot express (see DESIGN.md, "Static analysis & lint policy").
//!
//! | Rule   | Slug                 | Scope                         |
//! |--------|----------------------|-------------------------------|
//! | U1L001 | `no-panic`           | serving tiers, non-test code  |
//! | U1L002 | `no-truncating-cast` | wire/frame/codec files        |
//! | U1L003 | `msg-exhaustive`     | u1-proto msg.rs vs codec.rs   |
//! | U1L004 | `async-blocking`     | async fn bodies, all crates   |
//! | U1L005 | `no-float-eq`        | u1-analytics                  |
//! | U1L006 | `lock-order`         | workspace lock graph cycles   |
//! | U1L007 | `guard-across-blocking` | guards spanning blocking ops |
//! | U1L008 | `nondet-flow`        | hash iteration / wall clock on output paths |
//!
//! Findings are suppressible per line with
//! `// u1-lint: allow(<rule>) — <reason>` (rule ID or slug; the reason is
//! mandatory) and grandfathered via a baseline file for incremental
//! burn-down.

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod facts;
pub mod lexer;
pub mod model;
pub mod rules;

use baseline::{Baseline, MatchOutcome};
use diag::Finding;
use model::SourceFile;
use std::path::Path;

/// Default baseline location, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Default lock-graph artifact location, relative to the workspace root.
pub const LOCK_GRAPH_FILE: &str = "lock-graph.json";

/// Full analysis output: findings plus the lock-graph review artifact.
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// The workspace lock-acquisition graph (nodes, edges, cycles) as JSON.
    pub lock_graph_json: String,
}

/// Parses and analyzes the given files (paths must be workspace-relative).
/// Suppressed findings are dropped here; baseline filtering is separate.
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Finding> {
    analyze_sources_full(sources).findings
}

/// Like [`analyze_sources`], but also renders the lock graph.
pub fn analyze_sources_full(sources: &[(String, String)]) -> Analysis {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();
    let mut findings = Vec::new();
    for rule in rules::all() {
        findings.extend(rule.check(&files));
    }
    findings.retain(|f| {
        let Some(file) = files.iter().find(|s| s.rel_path == f.path) else {
            return true;
        };
        !(file.is_suppressed(f.rule, f.line) || file.is_suppressed(f.slug, f.line))
    });
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    let lock_graph_json = callgraph::Workspace::build(&files).lock_graph_json();
    Analysis {
        findings,
        lock_graph_json,
    }
}

/// Reads every analyzable file under `root` and runs all rules.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_workspace_full(root)?.findings)
}

/// Like [`analyze_workspace`], but also renders the lock graph.
pub fn analyze_workspace_full(root: &Path) -> std::io::Result<Analysis> {
    let mut sources = Vec::new();
    for path in model::workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(analyze_sources_full(&sources))
}

/// Applies the baseline at `baseline_path` to raw findings.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline_path: &Path,
) -> std::io::Result<MatchOutcome> {
    Ok(Baseline::load(baseline_path)?.matches(findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_filters_by_id_and_slug() {
        let src = "\
fn serve() {
    let a = x.unwrap(); // u1-lint: allow(U1L001) — recovery handled by supervisor
    let b = y.unwrap(); // u1-lint: allow(no-panic) — recovery handled by supervisor
    let c = z.unwrap();
}
";
        let findings = analyze_sources(&[(
            "crates/u1-server/src/handler.rs".to_string(),
            src.to_string(),
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn findings_are_sorted_by_location() {
        let src = "fn serve() { b.unwrap(); }\nfn serve2() { a.unwrap(); }\n";
        let findings = analyze_sources(&[
            ("crates/u1-server/src/z.rs".to_string(), src.to_string()),
            ("crates/u1-server/src/a.rs".to_string(), src.to_string()),
        ]);
        assert_eq!(findings.len(), 4);
        assert!(findings[0].path < findings[2].path);
        assert!(findings[0].line < findings[1].line);
    }
}
