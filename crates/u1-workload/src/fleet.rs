//! A closed-loop client fleet, generic over the transport.
//!
//! The workload [`Driver`](crate::Driver) is built for scale: it calls the
//! backend in-process and shard-parallel. This module is built for
//! *equivalence*: the same calibrated session model (§7 think times, §6
//! user classes, Markov op chains) driving any [`Transport`] — the
//! in-process [`DirectTransport`](u1_client::DirectTransport) or a real
//! socket via [`TcpTransport`](u1_client::TcpTransport) — so a wire-tier
//! run can be compared against an in-process run *byte for byte* at the
//! trace level.
//!
//! [`run_lockstep`] is the comparison harness: virtual time, a single
//! thread, one request in flight globally. Client actions are sequenced by
//! a `(SimTime, seq)` event heap, and the shared [`SimClock`] is advanced
//! before every action — so the order of backend calls, the latency-RNG
//! sample order, the session-id assignment and the trace `seq` stamps are
//! all pure functions of the fleet seed, independent of which transport
//! carries the requests. Two runs (direct vs. wire) against identically
//! seeded backends must produce identical [`FleetReport`]s and identical
//! canonical trace hashes; `BENCH_wire` and the wire parity test enforce
//! exactly that.
//!
//! [`run_concurrent`] is the load harness: real threads, one per client,
//! real sockets, think times compressed by a scale factor, per-op service
//! times sampled for the `BENCH_wire` latency histograms. It makes no
//! determinism promises — that is what lockstep is for.

use crate::files::FileModel;
use crate::markov;
use crate::sessions::{interop_gap_with_mode, next_session_gap, plan_session};
use crate::users::{sample_profile, UserProfile};
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use u1_auth::Token;
use u1_client::Transport;
use u1_core::timing::Measured;
use u1_core::{rngx, ApiOpKind, NodeId, NodeKind, SimClock, SimTime, VolumeId};

/// Fleet shape. Deliberately much smaller than
/// [`WorkloadConfig`](crate::WorkloadConfig): the fleet exists to exercise
/// the wire, not to reproduce the paper's month.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of clients; client `i` authenticates as `UserId(i + 1)`.
    pub users: u32,
    /// Sessions each client runs before retiring.
    pub sessions_per_user: u32,
    /// Root seed for every client-side random stream.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            users: 24,
            sessions_per_user: 3,
            seed: 11,
        }
    }
}

/// What a fleet run did, in deterministic counters.
///
/// Everything here is a pure function of the fleet seed and the backend it
/// ran against — **except** `pushes_observed`: push frames race the
/// client's polling in wire mode, so the count is wrapped in [`Measured`]
/// and compares equal by construction. Report equality between a direct
/// and a wire run is the fleet-level half of the parity contract (the
/// canonical trace hash is the backend-level half).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct FleetReport {
    pub users: u64,
    /// Sessions attempted (one `authenticate` each).
    pub sessions: u64,
    /// Sessions whose plan included data operations (~5.6%, §7.3).
    pub active_sessions: u64,
    pub ops_executed: u64,
    pub op_errors: u64,
    pub uploads: u64,
    pub uploads_deduplicated: u64,
    pub bytes_uploaded: u64,
    pub downloads: u64,
    pub bytes_downloaded: u64,
    /// Metadata (non-transfer) operations.
    pub metadata_ops: u64,
    /// Push notifications observed by clients. Wire delivery timing is
    /// racy, hence eq-invisible.
    pub pushes_observed: Measured<u64>,
}

impl FleetReport {
    fn absorb(&mut self, other: &FleetReport) {
        self.sessions += other.sessions;
        self.active_sessions += other.active_sessions;
        self.ops_executed += other.ops_executed;
        self.op_errors += other.op_errors;
        self.uploads += other.uploads;
        self.uploads_deduplicated += other.uploads_deduplicated;
        self.bytes_uploaded += other.bytes_uploaded;
        self.downloads += other.downloads;
        self.bytes_downloaded += other.bytes_downloaded;
        self.metadata_ops += other.metadata_ops;
        self.pushes_observed.0 += other.pushes_observed.0;
    }
}

/// One timed RPC from the concurrent fleet (for service-time histograms).
#[derive(Debug, Clone, Copy)]
pub struct ServiceSample {
    /// Which client issued it (index into the fleet; `UserId(client + 1)`).
    pub client: u32,
    /// The op that was issued (Upload/Download cover the whole multi-RPC
    /// exchange including content chunks).
    pub op: ApiOpKind,
    /// Wall-clock duration of the full request/response exchange.
    pub nanos: u64,
}

/// What one client does next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Connect,
    Op,
    Close,
}

/// The session-model state of one client, shared by both runners.
struct ClientSim {
    token: Token,
    rng: SmallRng,
    profile: UserProfile,
    files: FileModel,
    /// File nodes this client created, with their last uploaded size.
    known_files: Vec<(VolumeId, NodeId, u64)>,
    dirs: Vec<(VolumeId, NodeId)>,
    udfs: Vec<VolumeId>,
    root: Option<VolumeId>,
    /// Last generation seen for the root volume (drives `GetDelta`).
    generation: u64,
    last_op: ApiOpKind,
    sessions_left: u32,
    remaining_ops: u64,
    session_end: SimTime,
    /// Machine-paced session (large planned op count → bulk think times).
    bulk: bool,
    report: FleetReport,
}

impl ClientSim {
    fn new(index: u32, token: Token, seed: u64, sessions: u32) -> Self {
        let mut rng = rngx::sub_rng(seed, "fleet-user", u64::from(index));
        let profile = sample_profile(&mut rng);
        ClientSim {
            token,
            rng,
            profile,
            files: FileModel::new(256),
            known_files: Vec::new(),
            dirs: Vec::new(),
            udfs: Vec::new(),
            root: None,
            generation: 0,
            last_op: ApiOpKind::ListVolumes,
            sessions_left: sessions,
            remaining_ops: 0,
            session_end: SimTime::ZERO,
            bulk: false,
            report: FleetReport::default(),
        }
    }

    /// Opens a session: authenticate, negotiate caps, list volumes (the
    /// Fig. 8 startup sequence). Returns the action+gap that follows.
    fn connect<T: Transport>(&mut self, t: &mut T, now: SimTime) -> (Action, SimTime) {
        self.report.sessions += 1;
        if t.authenticate(self.token).is_err() {
            self.report.op_errors += 1;
            return self.after_close(now);
        }
        self.count(
            t.query_set_caps(&["fleet"]).map(|_| 0),
            ApiOpKind::QuerySetCaps,
        );
        match t.list_volumes() {
            Ok(vols) => {
                self.report.ops_executed += 1;
                self.report.metadata_ops += 1;
                self.root = vols.first().map(|v| v.volume);
            }
            Err(_) => {
                self.report.ops_executed += 1;
                self.report.metadata_ops += 1;
                self.report.op_errors += 1;
            }
        }
        let plan = plan_session(&mut self.rng, &self.profile);
        self.session_end = now + plan.duration;
        self.remaining_ops = plan.planned_ops;
        self.bulk = plan.planned_ops > 1_000;
        if plan.active {
            self.report.active_sessions += 1;
            let gap = interop_gap_with_mode(&mut self.rng, true, self.bulk);
            (Action::Op, now + gap)
        } else {
            (Action::Close, self.session_end)
        }
    }

    /// Runs one operation; returns the follow-up action and its time.
    fn op<T: Transport>(&mut self, t: &mut T, now: SimTime) -> (Action, SimTime) {
        if self.remaining_ops == 0 || now >= self.session_end {
            return (Action::Close, now);
        }
        let op = markov::next_op(&mut self.rng, self.last_op);
        self.last_op = op;
        self.execute(t, op);
        self.report.pushes_observed.0 += t.poll_pushes().len() as u64;
        self.remaining_ops -= 1;
        let metadata = !matches!(op, ApiOpKind::Upload | ApiOpKind::Download);
        let gap = interop_gap_with_mode(&mut self.rng, metadata, self.bulk);
        (Action::Op, now + gap)
    }

    /// Ends the session; returns the next connect (or nothing if retired).
    fn close<T: Transport>(&mut self, t: &mut T, now: SimTime) -> (Action, SimTime) {
        self.report.pushes_observed.0 += t.poll_pushes().len() as u64;
        t.close();
        self.after_close(now)
    }

    fn after_close(&mut self, now: SimTime) -> (Action, SimTime) {
        self.sessions_left = self.sessions_left.saturating_sub(1);
        let gap = next_session_gap(&mut self.rng, &self.profile, now);
        (Action::Connect, now + gap)
    }

    fn count(&mut self, result: Result<u64, u1_core::CoreError>, op: ApiOpKind) {
        self.report.ops_executed += 1;
        match op {
            ApiOpKind::Upload | ApiOpKind::Download => {}
            _ => self.report.metadata_ops += 1,
        }
        if result.is_err() {
            self.report.op_errors += 1;
        }
    }

    /// Maps one Markov op onto transport calls. Every branch decision
    /// draws only from the client RNG and prior deterministic results.
    fn execute<T: Transport>(&mut self, t: &mut T, op: ApiOpKind) {
        let Some(root) = self.root else {
            // Startup listing failed: only volume-independent ops make
            // sense; keep the RNG schedule moving with a listing.
            let r = t.list_volumes().map(|v| {
                self.root = v.first().map(|i| i.volume);
                0
            });
            self.count(r, ApiOpKind::ListVolumes);
            return;
        };
        match op {
            ApiOpKind::Upload => {
                let update = !self.known_files.is_empty() && self.rng.gen_range(0.0..1.0) < 0.30;
                if update {
                    let idx = self.rng.gen_range(0..self.known_files.len());
                    let (vol, node, old_size) = self.known_files[idx];
                    let (_cid, hash, size) = self.files.updated_file(&mut self.rng, old_size);
                    match t.upload(vol, node, hash, size, None) {
                        Ok(res) => {
                            self.report.ops_executed += 1;
                            self.report.uploads += 1;
                            self.report.bytes_uploaded += res.bytes_sent;
                            if res.deduplicated {
                                self.report.uploads_deduplicated += 1;
                            }
                            self.known_files[idx].2 = size;
                        }
                        Err(_) => {
                            self.report.ops_executed += 1;
                            self.report.uploads += 1;
                            self.report.op_errors += 1;
                        }
                    }
                } else {
                    let spec = self.files.new_file(&mut self.rng);
                    match t.make_node(root, None, NodeKind::File, spec.name.as_str()) {
                        Ok(info) => {
                            self.report.ops_executed += 1;
                            self.report.metadata_ops += 1;
                            match t.upload(root, info.node, spec.hash, spec.size, None) {
                                Ok(res) => {
                                    self.report.ops_executed += 1;
                                    self.report.uploads += 1;
                                    self.report.bytes_uploaded += res.bytes_sent;
                                    if res.deduplicated {
                                        self.report.uploads_deduplicated += 1;
                                    }
                                    self.known_files.push((root, info.node, spec.size));
                                }
                                Err(_) => {
                                    self.report.ops_executed += 1;
                                    self.report.uploads += 1;
                                    self.report.op_errors += 1;
                                }
                            }
                        }
                        Err(_) => {
                            self.report.ops_executed += 1;
                            self.report.metadata_ops += 1;
                            self.report.op_errors += 1;
                        }
                    }
                }
            }
            ApiOpKind::Download => {
                if self.known_files.is_empty() {
                    let r = t.get_delta(root, self.generation).map(|(generation, _)| {
                        self.generation = generation;
                        0
                    });
                    self.count(r, ApiOpKind::GetDelta);
                } else {
                    let idx = self.rng.gen_range(0..self.known_files.len());
                    let (vol, node, _) = self.known_files[idx];
                    match t.download(vol, node) {
                        Ok((size, _hash, _data)) => {
                            self.report.ops_executed += 1;
                            self.report.downloads += 1;
                            self.report.bytes_downloaded += size;
                        }
                        Err(_) => {
                            self.report.ops_executed += 1;
                            self.report.downloads += 1;
                            self.report.op_errors += 1;
                        }
                    }
                }
            }
            ApiOpKind::MakeFile => {
                let spec = self.files.new_file(&mut self.rng);
                let r = t
                    .make_node(root, None, NodeKind::File, spec.name.as_str())
                    .map(|info| {
                        self.known_files.push((root, info.node, 0));
                        0
                    });
                self.count(r, op);
            }
            ApiOpKind::MakeDir => {
                let name = self.files.new_dir_name();
                let r = t
                    .make_node(root, None, NodeKind::Directory, name.as_str())
                    .map(|info| {
                        self.dirs.push((root, info.node));
                        0
                    });
                self.count(r, op);
            }
            ApiOpKind::Unlink => {
                if self.known_files.is_empty() {
                    let r = t.list_shares().map(|_| 0);
                    self.count(r, ApiOpKind::ListShares);
                } else {
                    let idx = self.rng.gen_range(0..self.known_files.len());
                    let (vol, node, _) = self.known_files.swap_remove(idx);
                    let r = t.unlink(vol, node).map(|_| 0);
                    self.count(r, op);
                }
            }
            ApiOpKind::Move => {
                if self.known_files.is_empty() {
                    let r = t.list_volumes().map(|_| 0);
                    self.count(r, ApiOpKind::ListVolumes);
                } else {
                    let idx = self.rng.gen_range(0..self.known_files.len());
                    let (vol, node, _) = self.known_files[idx];
                    let new_parent = if self.dirs.is_empty() {
                        None
                    } else {
                        let d = self.rng.gen_range(0..self.dirs.len());
                        Some(self.dirs[d].1)
                    };
                    let name = self.files.new_dir_name();
                    let r = t.move_node(vol, node, new_parent, name.as_str()).map(|_| 0);
                    self.count(r, op);
                }
            }
            ApiOpKind::GetDelta => {
                let r = t.get_delta(root, self.generation).map(|(generation, _)| {
                    self.generation = generation;
                    0
                });
                self.count(r, op);
            }
            ApiOpKind::RescanFromScratch => {
                let r = t.rescan_from_scratch(root).map(|(generation, _)| {
                    self.generation = generation;
                    0
                });
                self.count(r, op);
            }
            ApiOpKind::ListVolumes => {
                let r = t.list_volumes().map(|_| 0);
                self.count(r, op);
            }
            ApiOpKind::ListShares => {
                let r = t.list_shares().map(|_| 0);
                self.count(r, op);
            }
            ApiOpKind::CreateUdf => {
                let name = self.files.new_dir_name();
                let r = t.create_udf(name.as_str()).map(|info| {
                    self.udfs.push(info.volume);
                    0
                });
                self.count(r, op);
            }
            ApiOpKind::DeleteVolume => {
                if self.udfs.is_empty() {
                    let r = t.list_volumes().map(|_| 0);
                    self.count(r, ApiOpKind::ListVolumes);
                } else {
                    let idx = self.rng.gen_range(0..self.udfs.len());
                    let vol = self.udfs.swap_remove(idx);
                    self.known_files.retain(|(v, _, _)| *v != vol);
                    self.dirs.retain(|(v, _)| *v != vol);
                    let r = t.delete_volume(vol).map(|_| 0);
                    self.count(r, op);
                }
            }
            ApiOpKind::QuerySetCaps => {
                let r = t.query_set_caps(&["fleet"]).map(|_| 0);
                self.count(r, op);
            }
            // Session bookkeeping kinds never come out of the Markov chain
            // mid-session; keep the schedule moving if they ever do.
            ApiOpKind::Authenticate | ApiOpKind::OpenSession | ApiOpKind::CloseSession => {
                let r = t.list_volumes().map(|_| 0);
                self.count(r, ApiOpKind::ListVolumes);
            }
        }
    }
}

/// Runs the fleet in **lockstep virtual time**: one thread, one request in
/// flight globally, the shared `clock` advanced to each event's timestamp
/// before the event runs.
///
/// `tokens[i]` authenticates client `i` (register users on the backend in
/// index order so ids line up). `factory(i)` builds client `i`'s transport
/// each time it (re)connects — a fresh connection per session, like the
/// real client.
pub fn run_lockstep<T, F>(
    cfg: &FleetConfig,
    clock: &SimClock,
    tokens: &[Token],
    mut factory: F,
) -> FleetReport
where
    T: Transport,
    F: FnMut(usize) -> T,
{
    assert_eq!(
        tokens.len(),
        cfg.users as usize,
        "one token per fleet client"
    );
    let mut clients: Vec<ClientSim> = tokens
        .iter()
        .enumerate()
        .map(|(i, tok)| ClientSim::new(i as u32, *tok, cfg.seed, cfg.sessions_per_user))
        .collect();
    let mut transports: Vec<Option<T>> = (0..clients.len()).map(|_| None).collect();

    // Min-heap on (time, seq): seq is a global tiebreaker so simultaneous
    // events run in a deterministic order.
    let mut heap: BinaryHeap<Reverse<(SimTime, u64, usize)>> = BinaryHeap::new();
    let mut actions: Vec<Action> = vec![Action::Connect; clients.len()];
    let mut seq = 0u64;
    for (i, client) in clients.iter_mut().enumerate() {
        let gap = next_session_gap(&mut client.rng, &client.profile, SimTime::ZERO);
        heap.push(Reverse((SimTime::ZERO + gap, seq, i)));
        seq += 1;
    }

    while let Some(Reverse((now, _, i))) = heap.pop() {
        clock.set(now);
        let client = &mut clients[i];
        let (next_action, next_at) = match actions[i] {
            Action::Connect => {
                if client.sessions_left == 0 {
                    continue;
                }
                let mut t = factory(i);
                let next = client.connect(&mut t, now);
                transports[i] = Some(t);
                next
            }
            Action::Op => match transports[i].as_mut() {
                Some(t) => client.op(t, now),
                None => continue,
            },
            Action::Close => match transports[i].as_mut() {
                Some(t) => {
                    let next = client.close(t, now);
                    transports[i] = None;
                    next
                }
                None => continue,
            },
        };
        if next_action == Action::Connect && client.sessions_left == 0 {
            continue; // retired
        }
        actions[i] = next_action;
        heap.push(Reverse((next_at, seq, i)));
        seq += 1;
    }

    let mut total = FleetReport {
        users: u64::from(cfg.users),
        ..Default::default()
    };
    for c in &clients {
        total.absorb(&c.report);
    }
    total
}

/// Runs the fleet **concurrently**: one OS thread per client, real
/// transports (typically TCP), think times divided by `time_scale`
/// (capped at 50ms real sleep so month-scale gaps don't stall the bench).
/// Returns the merged report and every op's wall-clock service time.
pub fn run_concurrent<T, F>(
    cfg: &FleetConfig,
    tokens: &[Token],
    time_scale: u64,
    factory: F,
) -> (FleetReport, Vec<ServiceSample>)
where
    T: Transport,
    F: Fn(usize) -> T + Sync,
{
    assert_eq!(
        tokens.len(),
        cfg.users as usize,
        "one token per fleet client"
    );
    assert!(time_scale > 0, "time_scale must be positive");
    let results: Vec<(FleetReport, Vec<ServiceSample>)> = std::thread::scope(|scope| {
        let factory = &factory;
        let handles: Vec<_> = tokens
            .iter()
            .enumerate()
            .map(|(i, tok)| {
                let token = *tok;
                scope.spawn(move || {
                    run_one_concurrent(
                        ClientSim::new(i as u32, token, cfg.seed, cfg.sessions_per_user),
                        i,
                        time_scale,
                        factory,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut total = FleetReport {
        users: u64::from(cfg.users),
        ..Default::default()
    };
    let mut samples = Vec::new();
    for (report, s) in results {
        total.absorb(&report);
        samples.extend(s);
    }
    (total, samples)
}

fn run_one_concurrent<T, F>(
    mut client: ClientSim,
    index: usize,
    time_scale: u64,
    factory: &F,
) -> (FleetReport, Vec<ServiceSample>)
where
    T: Transport,
    F: Fn(usize) -> T,
{
    const MAX_SLEEP: std::time::Duration = std::time::Duration::from_millis(50);
    let mut samples = Vec::new();
    let first_gap = next_session_gap(&mut client.rng, &client.profile, SimTime::ZERO);
    let mut now = SimTime::ZERO + first_gap;
    let mut action = Action::Connect;
    let mut transport: Option<T> = None;
    loop {
        let (next_action, next_at) = match action {
            Action::Connect => {
                if client.sessions_left == 0 {
                    break;
                }
                let mut t = factory(index);
                let started = std::time::Instant::now();
                let next = client.connect(&mut t, now);
                samples.push(ServiceSample {
                    client: index as u32,
                    op: ApiOpKind::Authenticate,
                    nanos: u1_core::timing::saturating_nanos(started),
                });
                transport = Some(t);
                next
            }
            Action::Op => match transport.as_mut() {
                Some(t) => {
                    let started = std::time::Instant::now();
                    let before = client.last_op;
                    let next = client.op(t, now);
                    let issued = client.last_op;
                    // `op` may have closed instead of issuing; only sample
                    // real exchanges.
                    if next.0 == Action::Op || issued != before {
                        samples.push(ServiceSample {
                            client: index as u32,
                            op: issued,
                            nanos: u1_core::timing::saturating_nanos(started),
                        });
                    }
                    next
                }
                None => break,
            },
            Action::Close => match transport.as_mut() {
                Some(t) => {
                    let next = client.close(t, now);
                    transport = None;
                    next
                }
                None => break,
            },
        };
        if next_action == Action::Connect && client.sessions_left == 0 {
            break;
        }
        let gap_us = next_at.since(now).as_micros() / time_scale;
        let sleep = std::time::Duration::from_micros(gap_us).min(MAX_SLEEP);
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
        now = next_at;
        action = next_action;
    }
    (client.report, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use u1_client::DirectTransport;
    use u1_core::UserId;
    use u1_server::{Backend, BackendConfig};
    use u1_trace::MemorySink;

    fn fleet_backend(seed: u64) -> (Arc<Backend>, Arc<SimClock>, Arc<MemorySink>) {
        let clock = Arc::new(SimClock::new());
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig {
                seed: seed ^ 0xBACC,
                ..Default::default()
            },
            clock.clone(),
            sink.clone(),
        ));
        (backend, clock, sink)
    }

    fn register(backend: &Backend, users: u32) -> Vec<Token> {
        (0..users)
            .map(|i| backend.register_user(UserId::new(u64::from(i) + 1)))
            .collect()
    }

    #[test]
    fn lockstep_is_deterministic_across_runs() {
        let cfg = FleetConfig {
            users: 8,
            sessions_per_user: 2,
            seed: 5,
        };
        let mut reports = Vec::new();
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let (backend, clock, sink) = fleet_backend(cfg.seed);
            let tokens = register(&backend, cfg.users);
            let report = run_lockstep(&cfg, &clock, &tokens, |_| {
                DirectTransport::new(Arc::clone(&backend))
            });
            let mut sha = u1_core::Sha1::new();
            for r in sink.take_sorted() {
                let mut line = String::new();
                let _ = u1_trace::csvline::write_line(&r, &mut line);
                sha.update(line.as_bytes());
            }
            reports.push(report);
            hashes.push(sha.finalize().to_hex());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(hashes[0], hashes[1]);
        assert!(reports[0].ops_executed > 0, "fleet did real work");
        assert_eq!(reports[0].sessions, 16, "8 users x 2 sessions");
    }

    #[test]
    fn concurrent_mode_completes_and_counts() {
        let cfg = FleetConfig {
            users: 4,
            sessions_per_user: 1,
            seed: 9,
        };
        let (backend, _clock, _sink) = fleet_backend(cfg.seed);
        let tokens = register(&backend, cfg.users);
        let (report, samples) = run_concurrent(&cfg, &tokens, 1_000_000, |_| {
            DirectTransport::new(Arc::clone(&backend))
        });
        assert_eq!(report.sessions, 4);
        assert!(samples.len() as u64 >= report.sessions);
    }
}
