//! File model: extensions, sizes, content popularity (dedup) and planned
//! node lifetimes.

use rand::rngs::SmallRng;
use rand::Rng;
use u1_core::rngx;
use u1_core::{ContentHash, FileCategory, Name, SimDuration};

/// Extension frequency weights, shaped to Fig. 4(c): Code holds the most
/// files, Audio/Video few files but the most bytes, Docs ≈ 10% of files.
const EXT_WEIGHTS: &[(&str, f64)] = &[
    // code (~30% of files)
    ("c", 4.0),
    ("h", 4.5),
    ("py", 4.0),
    ("js", 3.5),
    ("java", 2.5),
    ("php", 2.0),
    ("html", 3.0),
    ("css", 2.0),
    ("xml", 2.5),
    ("json", 2.0),
    // pics (~20%)
    ("jpg", 12.0),
    ("png", 6.0),
    ("gif", 2.0),
    // docs (~10%)
    ("pdf", 3.5),
    ("txt", 3.0),
    ("doc", 1.5),
    ("docx", 1.0),
    ("odt", 0.5),
    ("tex", 0.5),
    // audio/video (~6%)
    ("mp3", 4.0),
    ("ogg", 0.8),
    ("mp4", 0.7),
    ("avi", 0.5),
    // binary (~12%)
    ("o", 5.0),
    ("pyc", 3.0),
    ("jar", 1.5),
    ("deb", 1.0),
    ("db", 1.5),
    // compressed (~5%)
    ("gz", 2.0),
    ("zip", 2.0),
    ("tar", 1.0),
    // other (~17%)
    ("log", 5.0),
    ("bak", 4.0),
    ("dat", 4.0),
    ("cfg", 4.0),
];

/// Log-normal size parameters per category: (median bytes, sigma). Tuned so
/// that ~90% of files are < 1MB overall (Fig. 4(b)) while Audio/Video and
/// Compressed dominate bytes (Fig. 4(c)) and >25MB files carry most traffic
/// (Fig. 2(b)).
fn size_params(cat: FileCategory) -> (f64, f64) {
    match cat {
        FileCategory::Code => (3_000.0, 1.5),
        FileCategory::Pics => (250_000.0, 1.2),
        FileCategory::Docs => (40_000.0, 1.8),
        FileCategory::AudioVideo => (3_500_000.0, 1.9),
        FileCategory::Binary => (60_000.0, 2.0),
        FileCategory::Compressed => (900_000.0, 2.3),
        FileCategory::Other => (15_000.0, 1.9),
    }
}

/// A sampled new file.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Generated names are short ("f123.ext"), so they stay inline in
    /// [`Name`] — no heap allocation per sampled file.
    pub name: Name,
    pub ext: &'static str,
    pub category: FileCategory,
    pub size: u64,
    pub content_id: u64,
    pub hash: ContentHash,
    /// Planned time from creation to deletion; `None` = outlives the trace.
    pub lifetime: Option<SimDuration>,
}

/// Global content-popularity pool: a small set of popular contents (songs,
/// installers...) that many users upload, producing the Fig. 4(a) long tail
/// and the 17% dedup ratio, plus unique contents for everything else.
///
/// Popular ranks map to a fixed (size, ext) identity derived from the pool
/// seed alone (see `FileModel::popular_identity`), so independent
/// per-partition pools agree on every popular content without sharing
/// state — cross-partition dedup (matching hash AND size) keeps working
/// under the parallel driver, and the mapping no longer depends on which
/// client happens to draw a rank first.
pub struct ContentPool {
    /// Size of the popular pool.
    popular: u64,
    /// Zipf exponent over popular ranks.
    zipf_s: f64,
    /// Probability that a new file's content comes from the popular pool.
    p_popular: f64,
    /// Unique-content ids advance by `stride` from a per-partition start, so
    /// concurrent partitions never collide or depend on interleaving.
    stride: u64,
    next_unique: u64,
}

impl ContentPool {
    /// `expected_files` scales the popular pool so duplication statistics
    /// are population-size independent.
    pub fn new(expected_files: u64) -> Self {
        Self::with_stride(expected_files, 0, 1)
    }

    /// A pool whose unique-content ids are the arithmetic sequence
    /// `(1 << 32) + partition + k * stride` — disjoint across partitions.
    pub fn with_stride(expected_files: u64, partition: u64, stride: u64) -> Self {
        debug_assert!(stride > 0 && partition < stride);
        Self {
            popular: (expected_files / 100).clamp(16, 500_000),
            zipf_s: 0.95,
            // Tuned to land dr ≈ 0.17 (§5.3) together with the Zipf skew.
            p_popular: 0.165,
            stride,
            next_unique: (1 << 32) + partition,
        }
    }

    /// A guaranteed-unique content id (file updates always produce new
    /// content — edits don't collide).
    pub fn unique(&mut self) -> u64 {
        self.next_unique += self.stride;
        self.next_unique
    }
}

/// Stateful file generator.
pub struct FileModel {
    pool: ContentPool,
    ext_cdf: Vec<(&'static str, f64)>,
    /// Seed the popular-rank identities are derived from. Every partition
    /// of one experiment must share it.
    pool_seed: u64,
    next_name: u64,
    name_stride: u64,
}

impl FileModel {
    pub fn new(expected_files: u64) -> Self {
        Self::with_partition(expected_files, 0, 0, 1)
    }

    /// A file model for one driver partition: names and unique content ids
    /// advance by `stride` from `partition`, so the id spaces of concurrent
    /// partitions are disjoint and independent of execution interleaving.
    /// `partition 0, stride 1` reproduces the legacy single-threaded
    /// sequences exactly.
    pub fn with_partition(
        expected_files: u64,
        pool_seed: u64,
        partition: u64,
        stride: u64,
    ) -> Self {
        debug_assert!(stride > 0 && partition < stride);
        let total: f64 = EXT_WEIGHTS.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        let ext_cdf = EXT_WEIGHTS
            .iter()
            .map(|(e, w)| {
                acc += w / total;
                (*e, acc)
            })
            .collect();
        Self {
            pool: ContentPool::with_stride(expected_files, partition, stride),
            ext_cdf,
            pool_seed,
            next_name: partition,
            name_stride: stride,
        }
    }

    /// The fixed (size, ext) identity of a popular content rank, derived
    /// from the pool seed alone. Dedup requires matching hash AND size, so
    /// every drawer of a rank must agree on its size without coordination.
    fn popular_identity(&self, rank: u64) -> (u64, &'static str) {
        let mut rng = rngx::sub_rng(self.pool_seed, "popular-content", rank);
        let ext = self.sample_ext(&mut rng);
        let size = Self::sample_size(&mut rng, FileCategory::of_extension(ext));
        (size, ext)
    }

    fn sample_ext(&self, rng: &mut SmallRng) -> &'static str {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.ext_cdf
            .iter()
            .find(|(_, cum)| u <= *cum)
            .map(|(e, _)| *e)
            .unwrap_or("dat")
    }

    fn sample_size(rng: &mut SmallRng, cat: FileCategory) -> u64 {
        let (median, sigma) = size_params(cat);
        let size = rngx::sample_lognormal(rng, median.ln(), sigma);
        (size as u64).clamp(1, 8 << 30)
    }

    /// Samples the planned lifetime of a new node, honoring the Fig. 3(c)
    /// mortality profile.
    pub fn sample_lifetime(rng: &mut SmallRng, is_dir: bool) -> Option<SimDuration> {
        let (p_8h, p_month) = if is_dir {
            (
                crate::calibration::DIR_DEATH_IN_8H,
                crate::calibration::DIR_DEATH_IN_MONTH,
            )
        } else {
            (
                crate::calibration::FILE_DEATH_IN_8H,
                crate::calibration::FILE_DEATH_IN_MONTH,
            )
        };
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < p_8h {
            // Dies within 8 hours: log-uniform between 60s and 8h.
            let lo = 60.0f64;
            let hi = 8.0 * 3600.0;
            let secs = lo * (hi / lo).powf(rng.gen_range(0.0..1.0));
            Some(SimDuration::from_secs_f64(secs))
        } else if u < p_month {
            // Dies later in the month: log-uniform between 8h and 30d.
            let lo = 8.0 * 3600.0f64;
            let hi = 30.0 * 86_400.0;
            let secs = lo * (hi / lo).powf(rng.gen_range(0.0..1.0));
            Some(SimDuration::from_secs_f64(secs))
        } else {
            None
        }
    }

    /// Samples a brand-new file.
    pub fn new_file(&mut self, rng: &mut SmallRng) -> FileSpec {
        let ext = self.sample_ext(rng);
        let category = FileCategory::of_extension(ext);
        let default_size = Self::sample_size(rng, category);
        let (content_id, size, ext) = if rng.gen_range(0.0..1.0) < self.pool.p_popular {
            let rank = rngx::sample_zipf(rng, self.pool.popular, self.pool.zipf_s);
            let (size, ext) = self.popular_identity(rank);
            (rank, size, ext)
        } else {
            (self.pool.unique(), default_size, ext)
        };
        self.next_name += self.name_stride;
        FileSpec {
            name: format!("f{}.{}", self.next_name, ext).into(),
            ext,
            category: FileCategory::of_extension(ext),
            size,
            content_id,
            hash: ContentHash::from_content_id(content_id),
            lifetime: Self::sample_lifetime(rng, false),
        }
    }

    /// Samples the updated content of an existing file: new unique content,
    /// size jittered around the old one (edits grow/shrink files slightly;
    /// re-tagged media keeps its size).
    pub fn updated_file(&mut self, rng: &mut SmallRng, old_size: u64) -> (u64, ContentHash, u64) {
        let content_id = self.pool.unique();
        let factor = 1.0 + rng.gen_range(-0.10..0.12);
        let size = ((old_size as f64 * factor) as u64).max(1);
        (content_id, ContentHash::from_content_id(content_id), size)
    }

    /// Fresh directory name (short enough to stay inline in [`Name`]).
    pub fn new_dir_name(&mut self) -> Name {
        self.next_name += self.name_stride;
        format!("dir{}", self.next_name).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn model_and_rng() -> (FileModel, SmallRng) {
        (FileModel::new(100_000), SmallRng::seed_from_u64(42))
    }

    #[test]
    fn ninety_percent_of_files_are_under_1mb() {
        let (mut m, mut rng) = model_and_rng();
        let n = 20_000;
        let small = (0..n)
            .filter(|_| m.new_file(&mut rng).size < 1_000_000)
            .count();
        let frac = small as f64 / n as f64;
        assert!((0.84..=0.95).contains(&frac), "under-1MB fraction {frac}");
    }

    #[test]
    fn code_dominates_count_audio_video_dominates_bytes() {
        let (mut m, mut rng) = model_and_rng();
        let mut count: HashMap<FileCategory, u64> = HashMap::new();
        let mut bytes: HashMap<FileCategory, u64> = HashMap::new();
        for _ in 0..30_000 {
            let f = m.new_file(&mut rng);
            *count.entry(f.category).or_default() += 1;
            *bytes.entry(f.category).or_default() += f.size;
        }
        let code_count = count[&FileCategory::Code];
        let av_bytes = bytes[&FileCategory::AudioVideo];
        assert!(
            count
                .iter()
                .all(|(c, n)| *c == FileCategory::Code || *n <= code_count),
            "{count:?}"
        );
        assert!(
            bytes
                .iter()
                .all(|(c, b)| *c == FileCategory::AudioVideo || *b <= av_bytes),
            "{bytes:?}"
        );
        // Code's storage share is small despite its count lead (Fig. 4(c)).
        let total_bytes: u64 = bytes.values().sum();
        assert!((bytes[&FileCategory::Code] as f64) < 0.05 * total_bytes as f64);
    }

    #[test]
    fn duplicate_contents_share_size_and_hash() {
        let (mut m, mut rng) = model_and_rng();
        let mut seen: HashMap<u64, (u64, ContentHash)> = HashMap::new();
        let mut dups = 0;
        for _ in 0..20_000 {
            let f = m.new_file(&mut rng);
            if let Some((size, hash)) = seen.get(&f.content_id) {
                dups += 1;
                assert_eq!(*size, f.size, "dedup requires identical size");
                assert_eq!(*hash, f.hash);
            } else {
                seen.insert(f.content_id, (f.size, f.hash));
            }
        }
        assert!(dups > 500, "expect meaningful duplication, got {dups}");
    }

    #[test]
    fn dedup_byte_ratio_lands_near_paper_value() {
        let (mut m, mut rng) = model_and_rng();
        let mut unique: HashMap<u64, u64> = HashMap::new();
        let mut total = 0u64;
        for _ in 0..60_000 {
            let f = m.new_file(&mut rng);
            total += f.size;
            unique.entry(f.content_id).or_insert(f.size);
        }
        let unique_bytes: u64 = unique.values().sum();
        let dr = 1.0 - unique_bytes as f64 / total as f64;
        assert!(
            (0.05..=0.30).contains(&dr),
            "dedup ratio {dr} too far from paper's 0.171"
        );
    }

    #[test]
    fn lifetimes_match_mortality_profile() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 50_000;
        let mut die_8h = 0;
        let mut die_month = 0;
        for _ in 0..n {
            match FileModel::sample_lifetime(&mut rng, false) {
                Some(d) if d <= SimDuration::from_hours(8) => {
                    die_8h += 1;
                    die_month += 1;
                }
                Some(_) => die_month += 1,
                None => {}
            }
        }
        let f8 = die_8h as f64 / n as f64;
        let fm = die_month as f64 / n as f64;
        assert!((f8 - 0.171).abs() < 0.02, "8h mortality {f8}");
        assert!((fm - 0.289).abs() < 0.02, "month mortality {fm}");
    }

    #[test]
    fn updates_always_get_fresh_content() {
        let (mut m, mut rng) = model_and_rng();
        let (c1, h1, s1) = m.updated_file(&mut rng, 1000);
        let (c2, h2, _) = m.updated_file(&mut rng, 1000);
        assert_ne!(c1, c2);
        assert_ne!(h1, h2);
        assert!((890..=1130).contains(&s1), "size jitter near old: {s1}");
    }
}
