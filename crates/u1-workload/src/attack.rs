//! The DDoS episodes of §5.4.
//!
//! All three observed attacks "consisted on sharing a single user id and
//! its credentials to distribute content across thousands of desktop
//! clients" — storage leeching. The signature in the trace is a spike of
//! session/auth requests (5–15× normal) and of storage operations (4.6×,
//! 245× and 6.7× for the three attacks), decaying within an hour of the
//! manual response (banning the user and deleting the content).

use crate::calibration;
use u1_core::{SimDuration, SimTime};

/// One scripted attack.
#[derive(Debug, Clone)]
pub struct AttackScript {
    /// When the attack begins.
    pub start: SimTime,
    /// Ramp-up plus full-rate phase before engineers respond.
    pub response_after: SimDuration,
    /// Post-response decay horizon (activity fades to zero).
    pub decay: SimDuration,
    /// Session/auth request multiplier over normal full-population load.
    pub auth_multiplier: f64,
    /// Storage-operation multiplier over normal load (the paper's 4.6×,
    /// 245×, 6.7×).
    pub storage_multiplier: f64,
    /// Number of distinct leeching clients sharing the one user id.
    pub bot_clients: u64,
}

impl AttackScript {
    /// The three attacks of the paper, scheduled at their observed days
    /// (Jan 15, Jan 16, Feb 6 → window days 4, 5 and 26), starting in the
    /// late morning.
    pub fn paper_attacks() -> Vec<AttackScript> {
        calibration::ATTACK_DAYS
            .iter()
            .zip(calibration::ATTACK_API_MULTIPLIER.iter())
            .enumerate()
            .map(|(i, (&day, &storage_multiplier))| AttackScript {
                start: SimTime::from_hours(day * 24 + 10),
                response_after: SimDuration::from_mins(90),
                decay: SimDuration::from_mins(60),
                auth_multiplier: 5.0 + 5.0 * i as f64, // 5×, 10×, 15×
                storage_multiplier,
                bot_clients: 2_000,
            })
            .collect()
    }

    /// End of all attack activity.
    pub fn end(&self) -> SimTime {
        self.start + self.response_after + self.decay
    }

    /// Relative intensity at time `t`: 1.0 during the active phase,
    /// linearly decaying to 0 after the response, 0 outside.
    pub fn intensity(&self, t: SimTime) -> f64 {
        if t < self.start || t >= self.end() {
            return 0.0;
        }
        let response_at = self.start + self.response_after;
        if t < response_at {
            // Fast ramp-up over the first 10 minutes, then full rate.
            let ramp = SimDuration::from_mins(10);
            let since = t.since(self.start);
            if since < ramp {
                since.as_secs_f64() / ramp.as_secs_f64()
            } else {
                1.0
            }
        } else {
            // "storage activity ... decays within one hour after engineers
            // detected and responded to the attack".
            let since = t.since(response_at);
            (1.0 - since.as_secs_f64() / self.decay.as_secs_f64()).max(0.0)
        }
    }

    /// Whether engineers have already responded at `t` (the user is
    /// banned; subsequent bot authentications fail).
    pub fn responded(&self, t: SimTime) -> bool {
        t >= self.start + self.response_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_attacks_match_calibration() {
        let attacks = AttackScript::paper_attacks();
        assert_eq!(attacks.len(), 3);
        assert_eq!(attacks[0].start.day_index(), 4);
        assert_eq!(attacks[1].start.day_index(), 5);
        assert_eq!(attacks[2].start.day_index(), 26);
        assert!((attacks[1].storage_multiplier - 245.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_profile_ramps_peaks_and_decays() {
        let a = &AttackScript::paper_attacks()[0];
        assert!(a.intensity(a.start + SimDuration::from_secs(1)) < 0.1);
        assert!((a.intensity(a.start + SimDuration::from_mins(30)) - 1.0).abs() < 1e-9);
        let mid_decay = a.start + a.response_after + SimDuration::from_mins(30);
        let i = a.intensity(mid_decay);
        assert!((0.4..0.6).contains(&i), "half-decayed: {i}");
        assert_eq!(a.intensity(a.end()), 0.0);
        assert_eq!(a.intensity(SimTime::ZERO), 0.0);
    }

    #[test]
    fn response_flag_flips_after_90_minutes() {
        let a = &AttackScript::paper_attacks()[0];
        assert!(!a.responded(a.start + SimDuration::from_mins(89)));
        assert!(a.responded(a.start + SimDuration::from_mins(90)));
    }
}
