//! The Fig. 8 user-centric operation-transition chain.
//!
//! Fig. 8 aggregates, per user, the sequence of operations issued by
//! desktop clients; its strongest edges are transfer self-loops ("when a
//! client transfers a file, the next operation ... is also another
//! transfer"), the Make→Upload coupling, and the Authenticate →
//! ListVolumes → ListShares startup flow. The matrix below encodes those
//! observations; rows normalize at sampling time.

use rand::rngs::SmallRng;
use rand::Rng;
use u1_core::ApiOpKind;

/// Returns the outgoing transition weights from `state`.
pub fn transitions(state: ApiOpKind) -> &'static [(ApiOpKind, f64)] {
    use ApiOpKind::*;
    match state {
        // Startup flow (Fig. 8): Authenticate → caps / ListVolumes.
        Authenticate => &[(QuerySetCaps, 0.60), (ListVolumes, 0.40)],
        QuerySetCaps => &[(ListVolumes, 0.70), (ListShares, 0.10), (GetDelta, 0.20)],
        ListVolumes => &[
            (ListShares, 0.55),
            (GetDelta, 0.24),
            (Upload, 0.08),
            (Download, 0.06),
            (MakeFile, 0.04),
            (CreateUdf, 0.02),
            (DeleteVolume, 0.01),
        ],
        ListShares => &[
            (GetDelta, 0.40),
            (Upload, 0.20),
            (Download, 0.15),
            (MakeFile, 0.12),
            (Unlink, 0.05),
            (ListVolumes, 0.08),
        ],
        // Transfers repeat themselves (directory-granularity sync, edits).
        Upload => &[
            (Upload, 0.55),
            (MakeFile, 0.15),
            (Download, 0.10),
            (Unlink, 0.08),
            (GetDelta, 0.05),
            (Move, 0.03),
            (ListVolumes, 0.04),
        ],
        Download => &[
            (Download, 0.60),
            (Upload, 0.12),
            (GetDelta, 0.10),
            (Unlink, 0.05),
            (MakeFile, 0.05),
            (Move, 0.03),
            (ListShares, 0.05),
        ],
        // Make precedes Upload.
        MakeFile => &[
            (Upload, 0.70),
            (MakeFile, 0.15),
            (MakeDir, 0.05),
            (Download, 0.05),
            (GetDelta, 0.05),
        ],
        MakeDir => &[
            (MakeFile, 0.50),
            (MakeDir, 0.20),
            (Upload, 0.20),
            (GetDelta, 0.10),
        ],
        // Deletions come in long runs (directory clean-ups).
        Unlink => &[
            (Unlink, 0.55),
            (Upload, 0.15),
            (Download, 0.10),
            (MakeFile, 0.10),
            (GetDelta, 0.10),
        ],
        Move => &[
            (Move, 0.40),
            (Upload, 0.20),
            (GetDelta, 0.20),
            (Unlink, 0.10),
            (Download, 0.10),
        ],
        GetDelta => &[
            (Download, 0.33),
            (Upload, 0.15),
            (GetDelta, 0.15),
            (MakeFile, 0.10),
            (ListVolumes, 0.10),
            (Move, 0.08),
            (Unlink, 0.05),
            (RescanFromScratch, 0.04),
        ],
        CreateUdf => &[
            (MakeDir, 0.40),
            (MakeFile, 0.30),
            (Upload, 0.20),
            (GetDelta, 0.10),
        ],
        DeleteVolume => &[(ListVolumes, 0.50), (GetDelta, 0.50)],
        RescanFromScratch => &[
            (Download, 0.40),
            (GetDelta, 0.30),
            (Upload, 0.20),
            (MakeFile, 0.10),
        ],
        // Session bookkeeping states never occur mid-chain; restart cleanly.
        OpenSession | CloseSession => &[(ListVolumes, 1.0)],
    }
}

/// Samples the next operation.
pub fn next_op(rng: &mut SmallRng, state: ApiOpKind) -> ApiOpKind {
    let row = transitions(state);
    let total: f64 = row.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen_range(0.0..total);
    for (op, w) in row {
        if target < *w {
            return *op;
        }
        target -= w;
    }
    row.last().expect("non-empty row").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn every_row_is_normalized_enough_and_nonempty() {
        for op in ApiOpKind::ALL {
            let row = transitions(op);
            assert!(!row.is_empty(), "{op:?}");
            let total: f64 = row.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 0.02, "{op:?} sums to {total}");
        }
    }

    #[test]
    fn transfer_self_loops_dominate() {
        let up = transitions(ApiOpKind::Upload);
        assert_eq!(up[0].0, ApiOpKind::Upload);
        assert!(up[0].1 >= 0.5);
        let down = transitions(ApiOpKind::Download);
        assert_eq!(down[0].0, ApiOpKind::Download);
        assert!(down[0].1 >= 0.5);
    }

    #[test]
    fn chain_produces_long_transfer_runs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut state = ApiOpKind::Upload;
        let mut runs = Vec::new();
        let mut run = 0u32;
        for _ in 0..50_000 {
            let next = next_op(&mut rng, state);
            if next.is_transfer() && state.is_transfer() {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
            state = next;
        }
        let long = runs.iter().filter(|&&r| r >= 5).count();
        assert!(long > 100, "expect many transfer runs >= 5, got {long}");
    }

    #[test]
    fn stationary_mix_is_transfer_heavy() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut state = ApiOpKind::Authenticate;
        let mut counts: HashMap<ApiOpKind, u64> = HashMap::new();
        for _ in 0..100_000 {
            state = next_op(&mut rng, state);
            *counts.entry(state).or_default() += 1;
        }
        let transfers = counts[&ApiOpKind::Upload] + counts[&ApiOpKind::Download];
        let total: u64 = counts.values().sum();
        assert!(
            transfers as f64 / total as f64 > 0.35,
            "transfers {} of {total}",
            transfers
        );
        // DeleteVolume stays rare.
        assert!(
            *counts.get(&ApiOpKind::DeleteVolume).unwrap_or(&0) < total / 50,
            "{counts:?}"
        );
    }
}
