//! The discrete-event workload driver.
//!
//! Replays a month of client activity against a [`Backend`] under a
//! virtual clock: session arrivals per user (diurnal, weekday-aware),
//! Fig. 8 operation chains inside active sessions with Fig. 9 bursty think
//! times, calibrated file sizes/dedup/lifetimes, the three §5.4 DDoS
//! episodes, and the daily upload-job GC. Every server-side effect is
//! logged through the backend's trace sink, producing the dataset the
//! analytics crate consumes.
//!
//! # Parallel execution
//!
//! The client population is partitioned by metastore shard
//! (`MetaStore::shard_of`) into one `ShardSim` per shard,
//! plus a coordinator partition that owns the cross-cutting events
//! (maintenance GC and the §5.4 attack episodes). Each partition carries its
//! own event queue, its own [`u1_core::PartitionCtx`] (origin = shard
//! index), its own strided [`FileModel`] namespace, and per-client RNG
//! substreams — so every random draw and every id a partition consumes is a
//! pure function of the seed and the partition, never of thread
//! interleaving.
//!
//! Partitions are packed onto `cfg.workers` OS threads by *measured* load:
//! day 0 uses client counts as the proxy, and every later day re-packs the
//! shards LPT-style (heaviest first onto the least-loaded worker) using the
//! event counts each shard actually processed the previous day. Workers run
//! a day of virtual time at a time, drain their own partitions' buffered
//! trace runs ([`Backend::flush_trace_origin`]) *before* parking, then park
//! on a barrier while the coordinator runs its own events for the day and
//! seals the content-index epoch ([`Backend::seal_content_epoch`]), making
//! the day's cross-partition dedup state globally visible. Because no
//! mutable state is keyed by thread or by global arrival order — packing
//! and flush scheduling only move *when* work happens on the wall clock,
//! never *what* the simulation computes — the report and the
//! canonically-sorted trace are identical for every worker count:
//! `workers` is purely a wall-clock knob. Where the wall-clock goes is
//! accounted per phase ([`u1_core::timing`]) and surfaced in
//! [`DriverReport::timing`].

use crate::attack::AttackScript;
use crate::files::{FileModel, FileSpec};
use crate::markov;
use crate::sessions::{self, SessionPlan};
use crate::users::{sample_profile, UserClass, UserProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Barrier, Mutex};
use u1_auth::Token;
use u1_blobstore::PART_SIZE;
use u1_core::fault::{self, CircuitBreaker, FaultInjector, RetryPolicy};
use u1_core::partition::PartitionCtx;
use u1_core::timing::{saturating_nanos, Measured, Phase, PhaseNanos, PhaseTimers};
use u1_core::{
    rngx, ApiOpKind, ContentHash, CoreError, CoreResult, NodeKind, SessionId, SimDuration, SimTime,
    UploadId, UserId, VolumeId,
};
use u1_server::api::UploadOutcome;
use u1_server::Backend;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Simulated user population (the paper had 1.29M; the default scale
    /// keeps laptop runtimes in seconds while preserving every shape).
    pub users: u64,
    /// Trace window length in days (paper: 30).
    pub days: u64,
    /// Master seed: same seed ⇒ identical trace.
    pub seed: u64,
    /// Inject the three §5.4 DDoS episodes.
    pub attacks: bool,
    /// Scale factor on the pre-trace seeded file population.
    pub seed_files: f64,
    /// Worker threads the shard partitions are packed onto; `0` means one
    /// per metastore shard. The report and the canonically-sorted trace are
    /// identical for every value — this knob only trades wall-clock time.
    pub workers: usize,
}

impl WorkloadConfig {
    /// The default measurement-scale configuration used by the experiment
    /// harness: a 1:~500 scale-down of the paper's population over the full
    /// 30-day window.
    pub fn paper_scaled() -> Self {
        Self {
            users: 2_500,
            days: 30,
            seed: 0x0B5E55ED,
            attacks: true,
            seed_files: 1.0,
            workers: 0,
        }
    }

    /// A fast configuration for tests.
    pub fn quick() -> Self {
        Self {
            users: 300,
            days: 7,
            seed: 7,
            attacks: true,
            seed_files: 1.0,
            workers: 0,
        }
    }

    pub fn horizon(&self) -> SimTime {
        SimTime::from_days(self.days)
    }
}

/// What the driver did — the ground truth the trace analyses are checked
/// against.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct DriverReport {
    pub users: u64,
    pub seeded_files: u64,
    pub sessions_opened: u64,
    pub sessions_auth_failed: u64,
    pub ops_executed: u64,
    pub op_errors: u64,
    pub uploads: u64,
    pub upload_updates: u64,
    pub uploads_deduplicated: u64,
    pub bytes_uploaded: u64,
    pub downloads: u64,
    pub bytes_downloaded: u64,
    pub unlinks: u64,
    pub attack_sessions: u64,
    pub attack_ops: u64,
    pub users_banned: u64,
    pub maintenance_runs: u64,
    pub uploadjobs_reaped: u64,
    /// Token-cache counters (the backend's memcached tier; zeros when the
    /// cache is disabled). Globals read off the backend once at the end of
    /// the run, not per-partition counters — `absorb` skips them.
    pub token_cache_hits: u64,
    pub token_cache_misses: u64,
    // ----- fault plane (all zeros under `FaultPlan::none()`) -------------
    /// Client-side retries of ops that failed `unavailable`.
    pub client_retries: u64,
    /// Ops the client skipped because its per-shard circuit breaker was
    /// open (no server work, no trace record).
    pub breaker_fastfails: u64,
    /// Uploads cut short by an injected client crash (the upload job stays
    /// behind, resumable or GC bait).
    pub uploads_interrupted: u64,
    /// Crashed uploads continued from their last recorded part at a later
    /// session.
    pub uploads_resumed: u64,
    /// Crashed uploads whose job was gone (reaped by the weekly GC) when
    /// the client came back.
    pub uploads_abandoned: u64,
    /// Rescans forced by a dropped change notification.
    pub rescans_forced: u64,
    /// Backend-side fault counters, read once at the end of the run like
    /// the token-cache stats — `absorb` skips them.
    pub rpc_timeouts: u64,
    pub rpc_retries: u64,
    pub auth_fallbacks: u64,
    pub notify_dropped: u64,
    pub part_put_failures: u64,
    /// Degraded-mode I/O errors swallowed by the trace sink (`DirSink`
    /// keeps running after a failed open/write; this surfaces the count).
    pub trace_io_errors: u64,
    /// Per-phase wall-clock accounting for the run (worker run / barrier
    /// park / day flush / seal / coordinator thread-nanos). Wrapped in
    /// [`Measured`] so it is invisible to `PartialEq`: two runs with the
    /// same seed produce equal reports but different timings, and the
    /// determinism asserts (golden literal, worker-count invariance) must
    /// keep holding. `absorb` skips it.
    pub timing: Measured<PhaseNanos>,
}

impl DriverReport {
    /// Sums every counter of `other` into `self`. `users` is a population
    /// parameter, not a counter — the driver sets it once at the end.
    fn absorb(&mut self, other: &DriverReport) {
        self.seeded_files += other.seeded_files;
        self.sessions_opened += other.sessions_opened;
        self.sessions_auth_failed += other.sessions_auth_failed;
        self.ops_executed += other.ops_executed;
        self.op_errors += other.op_errors;
        self.uploads += other.uploads;
        self.upload_updates += other.upload_updates;
        self.uploads_deduplicated += other.uploads_deduplicated;
        self.bytes_uploaded += other.bytes_uploaded;
        self.downloads += other.downloads;
        self.bytes_downloaded += other.bytes_downloaded;
        self.unlinks += other.unlinks;
        self.attack_sessions += other.attack_sessions;
        self.attack_ops += other.attack_ops;
        self.users_banned += other.users_banned;
        self.maintenance_runs += other.maintenance_runs;
        self.uploadjobs_reaped += other.uploadjobs_reaped;
        self.client_retries += other.client_retries;
        self.breaker_fastfails += other.breaker_fastfails;
        self.uploads_interrupted += other.uploads_interrupted;
        self.uploads_resumed += other.uploads_resumed;
        self.uploads_abandoned += other.uploads_abandoned;
        self.rescans_forced += other.rescans_forced;
    }
}

#[derive(Debug, Clone)]
struct FileRef {
    volume: VolumeId,
    node: u1_core::NodeId,
    name: u1_core::Name,
    size: u64,
    hash: ContentHash,
    death: Option<SimTime>,
    last_write: SimTime,
}

#[derive(Debug, Clone)]
struct DirRef {
    volume: VolumeId,
    node: u1_core::NodeId,
    death: Option<SimTime>,
}

/// An upload a (simulated) client crash left behind: enough to resume the
/// job from its last recorded part at the next session.
#[derive(Debug, Clone)]
struct CrashedUpload {
    volume: VolumeId,
    node: u1_core::NodeId,
    name: u1_core::Name,
    hash: ContentHash,
    size: u64,
    upload: UploadId,
}

struct ClientState {
    user: UserId,
    token: Token,
    profile: UserProfile,
    /// Every behavioral draw of this client comes from its own substream
    /// (`sub_rng(seed, "client", user-1)`), so the draw sequence is
    /// independent of how clients across partitions interleave.
    rng: SmallRng,
    session: Option<SessionId>,
    session_end: SimTime,
    ops_left: u64,
    last_op: ApiOpKind,
    root: VolumeId,
    udfs: Vec<VolumeId>,
    files: Vec<FileRef>,
    dirs: Vec<DirRef>,
    known_gen: HashMap<VolumeId, u64>,
    pending_upload: Option<(VolumeId, u1_core::NodeId, u1_core::Name, ContentHash, u64)>,
    /// Survives session ends (that is its whole point): a crashed upload
    /// is resumed at the next session, or abandoned once the GC reaps it.
    crashed_upload: Option<CrashedUpload>,
    move_counter: u64,
    /// Machine-paced session (large planned op volume syncs at server
    /// turnaround speed, not human think time).
    bulk: bool,
    /// Occasional users may make a couple of tiny (<10KB-total) transfers
    /// over the month — §6.1's class definition allows it, and Fig. 7(b)
    /// needs ~25%/14% of users to have uploaded/downloaded *something*.
    tiny_budget: u8,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    SessionStart(u32),
    Op(u32),
    SessionEnd(u32),
    Maintenance,
    AttackWave(u8),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    t: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct AttackState {
    script: AttackScript,
    user: UserId,
    token: Token,
    responded: bool,
}

// ----- per-client helpers (free functions so partition methods can borrow
// ----- a client and the shared file model disjointly) -----------------------

fn pick_volume(c: &mut ClientState) -> VolumeId {
    if !c.udfs.is_empty() && c.rng.gen_range(0.0..1.0) < 0.3 {
        c.udfs[c.rng.gen_range(0..c.udfs.len())]
    } else {
        c.root
    }
}

/// `scratch` is per-partition scratch reused across calls (and across days)
/// so the hot op path does not allocate a fresh directory list per draw.
/// The RNG draw sequence is identical to the old allocating version.
fn pick_parent(
    c: &mut ClientState,
    vol: VolumeId,
    scratch: &mut Vec<u1_core::NodeId>,
) -> Option<u1_core::NodeId> {
    if c.rng.gen_range(0.0..1.0) < 0.5 {
        return None;
    }
    scratch.clear();
    scratch.extend(c.dirs.iter().filter(|d| d.volume == vol).map(|d| d.node));
    if scratch.is_empty() {
        None
    } else {
        Some(scratch[c.rng.gen_range(0..scratch.len())])
    }
}

/// Re-write targets mix the just-written file (80% of WAW gaps < 1h, §5.2)
/// with large media files (§5.1 blames .mp3 re-tagging for the 18.5%
/// update-traffic share: metadata edits re-upload big files).
fn pick_update_target(c: &mut ClientState) -> usize {
    let roll: f64 = c.rng.gen_range(0.0..1.0);
    if roll < 0.45 {
        // Most recently written.
        c.files
            .iter()
            .enumerate()
            .max_by_key(|(_, f)| f.last_write)
            .map(|(i, _)| i)
            .unwrap_or(0)
    } else if roll < 0.85 {
        // Largest of a random handful (media re-tagging).
        let mut best = c.rng.gen_range(0..c.files.len());
        for _ in 0..6 {
            let cand = c.rng.gen_range(0..c.files.len());
            if c.files[cand].size > c.files[best].size {
                best = cand;
            }
        }
        best
    } else {
        c.rng.gen_range(0..c.files.len())
    }
}

/// Restricts chain proposals to the user's class, and applies the
/// morning-download bias (§5.1's R/W trend).
fn class_filter(c: &mut ClientState, mut op: ApiOpKind, t: SimTime) -> ApiOpKind {
    use ApiOpKind::*;
    // Hour-of-day swap between transfer directions.
    let bias = sessions::download_bias(t);
    if op == Upload && bias > 1.0 && c.rng.gen_range(0.0..1.0) < (bias - 1.0) * 0.35 {
        op = Download;
    } else if op == Download && bias < 1.0 && c.rng.gen_range(0.0..1.0) < (1.0 - bias) * 0.35 {
        op = Upload;
    }
    match c.profile.class {
        UserClass::Occasional => match op {
            // Tiny-budget transfers keep the user under the 10KB
            // "occasional" ceiling; everything else degrades to
            // metadata work.
            Upload | MakeFile | Download if c.tiny_budget > 0 => op,
            Upload | Download | MakeFile => GetDelta,
            other => other,
        },
        UserClass::UploadOnly => match op {
            Download => GetDelta,
            other => other,
        },
        UserClass::DownloadOnly => match op {
            Upload | MakeFile | MakeDir => Download,
            other => other,
        },
        UserClass::Heavy => op,
    }
}

/// One partition of the parallel driver: the clients whose users live on a
/// single metastore shard, with their own event queue, file-name/content
/// namespace, and trace origin.
struct ShardSim {
    origin: u32,
    ctx: Arc<PartitionCtx>,
    backend: Arc<Backend>,
    clients: Vec<ClientState>,
    files: FileModel,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    report: DriverReport,
    /// Client-side view of the fault plane (its own seed stream, distinct
    /// from the backend's): used only for injected client crashes.
    faults: Arc<FaultInjector>,
    retry_policy: RetryPolicy,
    /// One breaker per partition — a partition *is* one metastore shard,
    /// which is exactly the failure domain the outage windows cover.
    breaker: CircuitBreaker,
    /// Events processed since the start of the run. The day loop reads the
    /// per-day delta to re-pack shards onto workers by measured load (a
    /// wall-clock-only decision: the count never feeds back into events).
    events_processed: u64,
    /// Reusable scratch for [`pick_parent`]'s directory candidate list.
    dir_scratch: Vec<u1_core::NodeId>,
}

impl ShardSim {
    fn push_event(&mut self, t: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            t,
            seq: self.seq,
            kind,
        }));
    }

    /// Runs every queued event with `t < end`. Events at or past `end` stay
    /// queued for the next day slice.
    fn run_until(&mut self, end: SimTime) {
        while self.queue.peek().is_some_and(|Reverse(ev)| ev.t < end) {
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.ctx.set_time(ev.t);
            fault::clear_tags();
            self.events_processed += 1;
            match ev.kind {
                EventKind::SessionStart(u) => self.on_session_start(u as usize, ev.t),
                EventKind::Op(u) => self.on_op(u as usize, ev.t),
                EventKind::SessionEnd(u) => self.on_session_end(u as usize, ev.t),
                EventKind::Maintenance | EventKind::AttackWave(_) => {
                    unreachable!("coordinator event in a shard partition")
                }
            }
        }
    }

    /// Pre-trace state for this partition's clients: volumes, directories
    /// and files that existed before the window opened. Written directly
    /// into the store/blobstore so no trace records are emitted — exactly
    /// like the real system, whose month-long trace opens onto years of
    /// accumulated state.
    fn seed_population(&mut self, cfg: &WorkloadConfig) {
        for i in 0..self.clients.len() {
            // The substream is keyed by the *global* user index so the
            // seeded state of any one user is partition-layout-independent.
            let global = self.clients[i].user.raw() - 1;
            let mut rng = rngx::sub_rng(cfg.seed, "seed-files", global);
            let (class_files, class_dirs) = match self.clients[i].profile.class {
                UserClass::Occasional => (6.0, 1.4),
                UserClass::UploadOnly => (30.0, 5.0),
                UserClass::DownloadOnly => (35.0, 6.0),
                UserClass::Heavy => (80.0, 13.0),
            };
            // One shared scale factor for files AND dirs: per-volume file
            // and dir counts are near-perfectly correlated in the paper
            // (Pearson 0.998, Fig. 10).
            let weight = self.clients[i].profile.weight.clamp(0.5, 40.0);
            let user = self.clients[i].user;

            // Nearly all UDF owners already had their UDF before the window.
            if self.clients[i].profile.has_udf && rng.gen_range(0.0..1.0) < 0.95 {
                if let Ok(v) = self
                    .backend
                    .store
                    .create_udf(user, "Documents", SimTime::ZERO)
                {
                    self.clients[i].udfs.push(v.volume);
                }
            }
            let volumes: Vec<VolumeId> = std::iter::once(self.clients[i].root)
                .chain(self.clients[i].udfs.iter().copied())
                .collect();

            // Seed each volume with a single random scale applied to both
            // its files and its dirs, keeping the two proportional.
            for &vol in &volumes {
                let vol_scale =
                    weight * cfg.seed_files * rng.gen_range(0.4..1.6) / volumes.len() as f64;
                let n_files = (class_files * vol_scale) as u64;
                let n_dirs = (class_dirs * vol_scale).round() as u64;
                for _ in 0..n_dirs {
                    if let Ok(node) = self.backend.store.make_node(
                        user,
                        vol,
                        None,
                        NodeKind::Directory,
                        &self.files.new_dir_name(),
                        SimTime::ZERO,
                    ) {
                        self.clients[i].dirs.push(DirRef {
                            volume: vol,
                            node: node.node,
                            death: None,
                        });
                    }
                }
                for _ in 0..n_files {
                    let spec = self.files.new_file(&mut rng);
                    let parent = if rng.gen_range(0.0..1.0) < 0.4 {
                        None
                    } else {
                        let dirs: Vec<_> = self.clients[i]
                            .dirs
                            .iter()
                            .filter(|d| d.volume == vol)
                            .collect();
                        if dirs.is_empty() {
                            None
                        } else {
                            Some(dirs[rng.gen_range(0..dirs.len())].node)
                        }
                    };
                    if let Ok(node) = self.backend.store.make_node(
                        user,
                        vol,
                        parent,
                        NodeKind::File,
                        &spec.name,
                        SimTime::ZERO,
                    ) {
                        let _ = self.backend.store.make_content(
                            user,
                            vol,
                            node.node,
                            spec.hash,
                            spec.size,
                            SimTime::ZERO,
                        );
                        self.backend
                            .blobs
                            .put(spec.hash, spec.size, None, SimTime::ZERO);
                        self.report.seeded_files += 1;
                        self.clients[i].files.push(FileRef {
                            volume: vol,
                            node: node.node,
                            name: spec.name,
                            size: spec.size,
                            hash: spec.hash,
                            death: None,
                            last_write: SimTime::ZERO,
                        });
                    }
                }
            }
        }
    }

    // ----- session lifecycle ------------------------------------------------

    fn on_session_start(&mut self, u: usize, t: SimTime) {
        // Schedule the next session regardless of what happens now.
        let gap = {
            let c = &mut self.clients[u];
            sessions::next_session_gap(&mut c.rng, &c.profile, t)
        };
        self.push_event(t + gap, EventKind::SessionStart(u as u32));

        if self.clients[u].session.is_some() {
            return; // still connected; skip this arrival
        }
        let token = self.clients[u].token;
        match self.backend.open_session(token) {
            Ok(handle) => {
                self.report.sessions_opened += 1;
                let plan: SessionPlan = {
                    let c = &mut self.clients[u];
                    sessions::plan_session(&mut c.rng, &c.profile)
                };
                {
                    let c = &mut self.clients[u];
                    c.session = Some(handle.session);
                    c.session_end = t + plan.duration;
                    c.ops_left = plan.planned_ops;
                    c.bulk = plan.planned_ops > 3_000;
                    c.last_op = ApiOpKind::Authenticate;
                }
                self.push_event(t + plan.duration, EventKind::SessionEnd(u as u32));

                let sid = handle.session;
                if !self.faults.is_none() {
                    self.recover_session_state(u, sid, t);
                }
                // Startup chatter: a fraction of (re)connections list
                // volumes/shares; active sessions always do (Fig. 8 flow).
                let long_enough = plan.duration > SimDuration::from_secs(2);
                if long_enough && (plan.active || self.clients[u].rng.gen_range(0.0..1.0) < 0.15) {
                    let _ = self.backend.query_set_caps(sid, vec!["generations".into()]);
                    let _ = self.backend.list_volumes(sid);
                    if self.clients[u].rng.gen_range(0.0..1.0) < 0.6 {
                        let _ = self.backend.list_shares(sid);
                    }
                    // Generation-point check.
                    let root = self.clients[u].root;
                    let from = *self.clients[u].known_gen.get(&root).unwrap_or(&0);
                    if let Ok((generation, _)) = self.backend.get_delta(sid, root, from) {
                        self.clients[u].known_gen.insert(root, generation);
                    }
                }
                if plan.active {
                    // Deletions made while offline sync at reconnect: sweep
                    // files whose planned lifetime expired (this is what
                    // realizes the Fig. 3(c) mortality profile).
                    self.sweep_overdue(u, sid, t);
                    let gap = {
                        let c = &mut self.clients[u];
                        sessions::interop_gap_with_mode(&mut c.rng, false, c.bulk)
                    };
                    self.push_event(t + gap, EventKind::Op(u as u32));
                }
            }
            Err(_) => {
                self.report.sessions_auth_failed += 1;
                // Transient auth failure: the client retries shortly.
                let retry = SimDuration::from_secs(self.clients[u].rng.gen_range(20..120));
                self.push_event(t + retry, EventKind::SessionStart(u as u32));
            }
        }
    }

    fn on_session_end(&mut self, u: usize, t: SimTime) {
        if let Some(sid) = self.clients[u].session {
            if t >= self.clients[u].session_end {
                let _ = self.backend.close_session(sid);
                self.clients[u].session = None;
                self.clients[u].ops_left = 0;
                self.clients[u].pending_upload = None;
            }
        }
    }

    /// Unlinks up to 40 overdue nodes at session start (offline deletions
    /// syncing back).
    fn sweep_overdue(&mut self, u: usize, sid: SessionId, t: SimTime) {
        for _ in 0..40 {
            let overdue = self.clients[u]
                .files
                .iter()
                .position(|f| f.death.is_some_and(|d| d <= t));
            let Some(idx) = overdue else { break };
            let f = self.clients[u].files.swap_remove(idx);
            self.report.unlinks += 1;
            self.report.ops_executed += 1;
            if self.retry(|b| b.unlink(sid, f.volume, f.node)).is_err() {
                self.report.op_errors += 1;
            }
        }
        for _ in 0..8 {
            let overdue = self.clients[u]
                .dirs
                .iter()
                .position(|d| d.death.is_some_and(|dd| dd <= t));
            let Some(idx) = overdue else { break };
            let d = self.clients[u].dirs.swap_remove(idx);
            self.report.unlinks += 1;
            self.report.ops_executed += 1;
            if self.retry(|b| b.unlink(sid, d.volume, d.node)).is_err() {
                self.report.op_errors += 1;
            }
        }
    }

    // ----- client-side failure handling -------------------------------------

    /// Client-side retry with bounded exponential backoff, fronted by a
    /// per-partition circuit breaker (a partition *is* one metastore shard,
    /// which is exactly the failure domain the injected outage windows
    /// cover). Under `FaultPlan::none()` this is a plain passthrough call,
    /// so the fault-free driver is bit-identical to the pre-fault one.
    ///
    /// Only `unavailable` errors are retried; anything else (not-found,
    /// permission, invalid) is a real answer, not a fault.
    fn retry<T>(&mut self, f: impl Fn(&Backend) -> CoreResult<T>) -> CoreResult<T> {
        if self.faults.is_none() {
            return f(&self.backend);
        }
        let now = u1_core::partition::current_time().unwrap_or(SimTime::ZERO);
        if !self.breaker.allows(now) {
            self.report.breaker_fastfails += 1;
            return Err(CoreError::unavailable("circuit open"));
        }
        let policy = self.retry_policy;
        let mut attempt = 1u32;
        loop {
            fault::set_attempt(attempt);
            match f(&self.backend) {
                Ok(v) => {
                    self.breaker.record_success();
                    fault::set_attempt(1);
                    return Ok(v);
                }
                Err(e) => {
                    let transient = matches!(e, CoreError::Unavailable(_));
                    if transient {
                        self.breaker.record_failure(now);
                    }
                    if !transient || attempt >= policy.max_attempts {
                        fault::set_attempt(1);
                        return Err(e);
                    }
                    self.report.client_retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// One logical upload under the failure model: an injected client crash
    /// abandons the job mid-transfer (to be resumed at the next session, or
    /// reaped by the weekly GC); otherwise the transfer runs in the retry
    /// loop, carrying the upload-job id across attempts so a retry resumes
    /// from the last recorded part instead of restarting the stream.
    #[allow(clippy::too_many_arguments)]
    fn do_upload(
        &mut self,
        u: usize,
        sid: SessionId,
        vol: VolumeId,
        node: u1_core::NodeId,
        name: &str,
        hash: ContentHash,
        size: u64,
    ) -> CoreResult<(bool, u64)> {
        if self.faults.is_none() {
            // Identical call sequence to the pre-fault driver.
            return self.backend.upload_file(sid, vol, node, hash, size);
        }
        if self.faults.client_crashes() {
            return self.crash_mid_upload(u, sid, vol, node, name, hash, size);
        }
        let now = u1_core::partition::current_time().unwrap_or(SimTime::ZERO);
        if !self.breaker.allows(now) {
            self.report.breaker_fastfails += 1;
            return Err(CoreError::unavailable("circuit open"));
        }
        let policy = self.retry_policy;
        let mut resume = None;
        let mut attempt = 1u32;
        loop {
            fault::set_attempt(attempt);
            match self
                .backend
                .upload_file_with_recovery(sid, vol, node, hash, size, resume)
            {
                Ok(v) => {
                    self.breaker.record_success();
                    fault::set_attempt(1);
                    return Ok(v);
                }
                Err(fail) => {
                    let transient = matches!(fail.error, CoreError::Unavailable(_));
                    if transient {
                        self.breaker.record_failure(now);
                    }
                    if !transient || attempt >= policy.max_attempts {
                        fault::set_attempt(1);
                        return Err(fail.error);
                    }
                    resume = fail.resume;
                    self.report.client_retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// Simulates the client dying mid-transfer: begin the upload, put about
    /// half the parts, then vanish without commit or cancel. The abandoned
    /// job is what the resume path (`recover_session_state`) and the weekly
    /// GC (Appendix A upload jobs) exist for.
    #[allow(clippy::too_many_arguments)]
    fn crash_mid_upload(
        &mut self,
        u: usize,
        sid: SessionId,
        vol: VolumeId,
        node: u1_core::NodeId,
        name: &str,
        hash: ContentHash,
        size: u64,
    ) -> CoreResult<(bool, u64)> {
        let upload = match self.backend.begin_upload(sid, vol, node, hash, size)? {
            UploadOutcome::Deduplicated { .. } => return Ok((true, 0)),
            UploadOutcome::Started { upload } => upload,
        };
        let total = size.max(1);
        let parts = total.div_ceil(PART_SIZE);
        let mut sent = 0u64;
        for _ in 0..parts / 2 {
            let part = (total - sent).min(PART_SIZE);
            if self.backend.upload_chunk(sid, upload, part, None).is_err() {
                break;
            }
            sent += part;
        }
        self.clients[u].crashed_upload = Some(CrashedUpload {
            volume: vol,
            node,
            name: name.into(),
            hash,
            size,
            upload,
        });
        self.report.uploads_interrupted += 1;
        Err(CoreError::unavailable("client crashed mid-upload"))
    }

    /// Post-(re)connect recovery, run right after a session opens when the
    /// fault plane is live: resume a crashed upload from its last recorded
    /// part, and rescan any volume whose change notification the broker
    /// dropped while we were away — the client can't know *what* changed,
    /// only that its generation point can't be trusted (the paper's
    /// rescan-from-scratch path).
    fn recover_session_state(&mut self, u: usize, sid: SessionId, t: SimTime) {
        if let Some(cu) = self.clients[u].crashed_upload.take() {
            match self.backend.upload_file_with_recovery(
                sid,
                cu.volume,
                cu.node,
                cu.hash,
                cu.size,
                Some(cu.upload),
            ) {
                Ok((_, sent)) => {
                    self.report.uploads += 1;
                    self.report.uploads_resumed += 1;
                    self.report.bytes_uploaded += sent;
                    let c = &mut self.clients[u];
                    if let Some(f) = c
                        .files
                        .iter_mut()
                        .find(|f| f.volume == cu.volume && f.node == cu.node)
                    {
                        f.size = cu.size;
                        f.hash = cu.hash;
                        f.last_write = t;
                    } else {
                        let death = FileModel::sample_lifetime(&mut c.rng, false).map(|d| t + d);
                        c.files.push(FileRef {
                            volume: cu.volume,
                            node: cu.node,
                            name: cu.name,
                            size: cu.size,
                            hash: cu.hash,
                            death,
                            last_write: t,
                        });
                    }
                }
                Err(fail) if fail.resume.is_none() => {
                    // The job was reaped by the weekly GC (or the node is
                    // gone): nothing left to continue from.
                    self.report.uploads_abandoned += 1;
                }
                Err(_) => {
                    // Still transiently failing; keep it for next session.
                    self.clients[u].crashed_upload = Some(cu);
                }
            }
        }
        let user = self.clients[u].user;
        for vol in self.backend.take_missed_notify(user) {
            self.report.rescans_forced += 1;
            let _ = self.backend.rescan_from_scratch(sid, vol);
        }
    }

    // ----- operations -------------------------------------------------------

    fn on_op(&mut self, u: usize, t: SimTime) {
        let Some(sid) = self.clients[u].session else {
            return;
        };
        if t >= self.clients[u].session_end || self.clients[u].ops_left == 0 {
            return;
        }
        self.clients[u].ops_left -= 1;

        let op = {
            let c = &mut self.clients[u];
            let proposed = markov::next_op(&mut c.rng, c.last_op);
            class_filter(c, proposed, t)
        };
        self.execute_op(u, sid, op, t);
        self.clients[u].last_op = op;

        if self.clients[u].ops_left > 0 {
            let metadata = !op.is_transfer();
            let gap = {
                let c = &mut self.clients[u];
                sessions::interop_gap_with_mode(&mut c.rng, metadata, c.bulk)
            };
            self.push_event(t + gap, EventKind::Op(u as u32));
        }
    }

    fn execute_op(&mut self, u: usize, sid: SessionId, op: ApiOpKind, t: SimTime) {
        use ApiOpKind::*;
        self.report.ops_executed += 1;
        let ok = match op {
            Upload => self.op_upload(u, sid, t),
            Download => self.op_download(u, sid),
            MakeFile => self.op_make_file(u, sid, t),
            MakeDir => self.op_make_dir(u, sid, t),
            Unlink => self.op_unlink(u, sid, t),
            Move => self.op_move(u, sid),
            GetDelta => self.op_get_delta(u, sid),
            ListVolumes => self.retry(|b| b.list_volumes(sid)).is_ok(),
            ListShares => self.retry(|b| b.list_shares(sid)).is_ok(),
            CreateUdf => self.op_create_udf(u, sid),
            DeleteVolume => self.op_delete_volume(u, sid),
            RescanFromScratch => {
                let vol = self.clients[u].root;
                self.retry(|b| b.rescan_from_scratch(sid, vol)).is_ok()
            }
            QuerySetCaps => self
                .retry(|b| b.query_set_caps(sid, vec!["generations".into()]))
                .is_ok(),
            Authenticate | OpenSession | CloseSession => true,
        };
        if !ok {
            self.report.op_errors += 1;
        }
    }

    fn op_upload(&mut self, u: usize, sid: SessionId, t: SimTime) -> bool {
        // A Make that preceded us?
        if let Some((vol, node, name, hash, size)) = self.clients[u].pending_upload.take() {
            return match self.do_upload(u, sid, vol, node, &name, hash, size) {
                Ok((dedup, sent)) => {
                    self.report.uploads += 1;
                    if dedup {
                        self.report.uploads_deduplicated += 1;
                    }
                    self.report.bytes_uploaded += sent;
                    let c = &mut self.clients[u];
                    let death = FileModel::sample_lifetime(&mut c.rng, false).map(|d| t + d);
                    c.files.push(FileRef {
                        volume: vol,
                        node,
                        name,
                        size,
                        hash,
                        death,
                        last_write: t,
                    });
                    true
                }
                Err(_) => false,
            };
        }
        // Re-write an existing file? The U1 client re-uploads on any change;
        // §5.1 finds 10.05% of uploads carry *distinct* hash/size (updates),
        // and Fig. 3(a) shows WAW as the most common dependency — which
        // includes same-content re-uploads (e.g. touched files dedup away).
        let is_rewrite = {
            let c = &mut self.clients[u];
            !c.files.is_empty() && c.rng.gen_range(0.0..1.0) < 0.18
        };
        if is_rewrite {
            let (idx, vol, node, name, hash, size, distinct) = {
                let c = &mut self.clients[u];
                let idx = pick_update_target(c);
                let old_size = c.files[idx].size;
                let distinct = c.rng.gen_range(0.0..1.0) < 0.55;
                let (hash, size) = if distinct {
                    let (_, h, s) = self.files.updated_file(&mut c.rng, old_size);
                    (h, s)
                } else {
                    // Same content re-uploaded: the dedup probe
                    // short-circuits.
                    (c.files[idx].hash, old_size)
                };
                (
                    idx,
                    c.files[idx].volume,
                    c.files[idx].node,
                    c.files[idx].name.clone(),
                    hash,
                    size,
                    distinct,
                )
            };
            return match self.do_upload(u, sid, vol, node, &name, hash, size) {
                Ok((dedup, sent)) => {
                    self.report.uploads += 1;
                    if distinct {
                        self.report.upload_updates += 1;
                    }
                    if dedup {
                        self.report.uploads_deduplicated += 1;
                    }
                    self.report.bytes_uploaded += sent;
                    let f = &mut self.clients[u].files[idx];
                    f.size = size;
                    f.hash = hash;
                    f.last_write = t;
                    true
                }
                Err(_) => false,
            };
        }
        // Brand-new file: Make then upload in one chain step.
        if self.clients[u].files.len() > 4_000 {
            // Hygiene cap: treat as an update instead of growing unboundedly.
            return self.op_get_delta(u, sid);
        }
        // Directory growth tracks file growth (users sync whole folders),
        // keeping per-volume file:dir ratios stable — the Fig. 10
        // correlation.
        if self.clients[u].rng.gen_range(0.0..1.0) < 0.15 {
            let vol = pick_volume(&mut self.clients[u]);
            let name = self.files.new_dir_name();
            if let Ok(node) =
                self.retry(|b| b.make_node(sid, vol, None, NodeKind::Directory, &name))
            {
                let c = &mut self.clients[u];
                let death = FileModel::sample_lifetime(&mut c.rng, true).map(|d| t + d);
                c.dirs.push(DirRef {
                    volume: vol,
                    node: node.node,
                    death,
                });
            }
        }
        let mut spec: FileSpec = self.files.new_file(&mut self.clients[u].rng);
        if self.clients[u].profile.class == UserClass::Occasional {
            // Tiny transfer: stay under the 10KB "occasional" ceiling.
            spec.size = spec.size.min(4 * 1024);
            self.clients[u].tiny_budget = self.clients[u].tiny_budget.saturating_sub(1);
        }
        let vol = pick_volume(&mut self.clients[u]);
        let parent = pick_parent(&mut self.clients[u], vol, &mut self.dir_scratch);
        let Ok(node) = self.retry(|b| b.make_node(sid, vol, parent, NodeKind::File, &spec.name))
        else {
            return false;
        };
        match self.do_upload(u, sid, vol, node.node, &spec.name, spec.hash, spec.size) {
            Ok((dedup, sent)) => {
                self.report.uploads += 1;
                if dedup {
                    self.report.uploads_deduplicated += 1;
                }
                self.report.bytes_uploaded += sent;
                self.clients[u].files.push(FileRef {
                    volume: vol,
                    node: node.node,
                    name: spec.name,
                    size: spec.size,
                    hash: spec.hash,
                    death: spec.lifetime.map(|d| t + d),
                    last_write: t,
                });
                true
            }
            Err(_) => false,
        }
    }

    fn op_download(&mut self, u: usize, sid: SessionId) -> bool {
        if self.clients[u].files.is_empty() {
            return self.op_get_delta(u, sid);
        }
        let occasional = self.clients[u].profile.class == UserClass::Occasional;
        let idx = {
            let c = &mut self.clients[u];
            if occasional {
                // Tiny download only (stay under the occasional ceiling).
                c.files.iter().position(|f| f.size <= 4 * 1024)
            } else if c.rng.gen_range(0.0..1.0) < 0.12 {
                // Fetch what was just written (RAW; sync to another device).
                Some(
                    c.files
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, f)| f.last_write)
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                )
            } else {
                // Mild size bias: popular big media is fetched more, which
                // is what pushes the download byte share of >25MB files
                // above the upload share (Fig. 2(b)).
                let mut best = c.rng.gen_range(0..c.files.len());
                for _ in 0..3 {
                    let cand = c.rng.gen_range(0..c.files.len());
                    if c.files[cand].size > c.files[best].size && c.rng.gen_range(0.0..1.0) < 0.7 {
                        best = cand;
                    }
                }
                Some(best)
            }
        };
        let Some(idx) = idx else {
            return self.op_get_delta(u, sid);
        };
        if occasional {
            self.clients[u].tiny_budget = self.clients[u].tiny_budget.saturating_sub(1);
        }
        let (vol, node) = (
            self.clients[u].files[idx].volume,
            self.clients[u].files[idx].node,
        );
        match self.retry(|b| b.download(sid, vol, node)) {
            Ok((size, _, _)) => {
                self.report.downloads += 1;
                self.report.bytes_downloaded += size;
                true
            }
            Err(_) => {
                // Stale reference (e.g. volume deleted): drop it.
                self.clients[u].files.swap_remove(idx);
                false
            }
        }
    }

    fn op_make_file(&mut self, u: usize, sid: SessionId, _t: SimTime) -> bool {
        let spec = self.files.new_file(&mut self.clients[u].rng);
        let vol = pick_volume(&mut self.clients[u]);
        let parent = pick_parent(&mut self.clients[u], vol, &mut self.dir_scratch);
        match self.retry(|b| b.make_node(sid, vol, parent, NodeKind::File, &spec.name)) {
            Ok(node) => {
                self.clients[u].pending_upload =
                    Some((vol, node.node, spec.name, spec.hash, spec.size));
                true
            }
            Err(_) => false,
        }
    }

    fn op_make_dir(&mut self, u: usize, sid: SessionId, t: SimTime) -> bool {
        let vol = pick_volume(&mut self.clients[u]);
        let name = self.files.new_dir_name();
        match self.retry(|b| b.make_node(sid, vol, None, NodeKind::Directory, &name)) {
            Ok(node) => {
                let c = &mut self.clients[u];
                let death = FileModel::sample_lifetime(&mut c.rng, true).map(|d| t + d);
                c.dirs.push(DirRef {
                    volume: vol,
                    node: node.node,
                    death,
                });
                true
            }
            Err(_) => false,
        }
    }

    fn op_unlink(&mut self, u: usize, sid: SessionId, t: SimTime) -> bool {
        // Overdue file first (planned lifetime reached), then overdue dir,
        // then occasionally an old file.
        let overdue_file = self.clients[u]
            .files
            .iter()
            .position(|f| f.death.is_some_and(|d| d <= t));
        if let Some(idx) = overdue_file {
            let f = self.clients[u].files.swap_remove(idx);
            self.report.unlinks += 1;
            return self.retry(|b| b.unlink(sid, f.volume, f.node)).is_ok();
        }
        let overdue_dir = self.clients[u]
            .dirs
            .iter()
            .position(|d| d.death.is_some_and(|dd| dd <= t));
        if let Some(idx) = overdue_dir {
            let d = self.clients[u].dirs.swap_remove(idx);
            // Cascades server-side; forget local files under that volume's
            // dir lazily (stale refs are swept on failed ops).
            self.report.unlinks += 1;
            return self.retry(|b| b.unlink(sid, d.volume, d.node)).is_ok();
        }
        let pick_old = {
            let c = &mut self.clients[u];
            !c.files.is_empty() && c.rng.gen_range(0.0..1.0) < 0.4
        };
        if pick_old {
            let idx = {
                let c = &mut self.clients[u];
                c.rng.gen_range(0..c.files.len())
            };
            let f = self.clients[u].files.swap_remove(idx);
            self.report.unlinks += 1;
            return self.retry(|b| b.unlink(sid, f.volume, f.node)).is_ok();
        }
        // Nothing to delete: degrade to a metadata check.
        self.op_get_delta(u, sid)
    }

    fn op_move(&mut self, u: usize, sid: SessionId) -> bool {
        if self.clients[u].files.is_empty() {
            return self.op_get_delta(u, sid);
        }
        let (idx, vol, node, new_name) = {
            let c = &mut self.clients[u];
            let idx = c.rng.gen_range(0..c.files.len());
            c.move_counter += 1;
            let counter = c.move_counter;
            let f = &c.files[idx];
            (idx, f.volume, f.node, format!("r{counter}_{}", f.name))
        };
        let new_parent = pick_parent(&mut self.clients[u], vol, &mut self.dir_scratch);
        match self.retry(|b| b.move_node(sid, vol, node, new_parent, &new_name)) {
            Ok(_) => {
                self.clients[u].files[idx].name = new_name.into();
                true
            }
            Err(_) => false,
        }
    }

    fn op_get_delta(&mut self, u: usize, sid: SessionId) -> bool {
        let vol = pick_volume(&mut self.clients[u]);
        let from = *self.clients[u].known_gen.get(&vol).unwrap_or(&0);
        match self.retry(|b| b.get_delta(sid, vol, from)) {
            Ok((generation, _)) => {
                self.clients[u].known_gen.insert(vol, generation);
                true
            }
            Err(_) => false,
        }
    }

    fn op_create_udf(&mut self, u: usize, sid: SessionId) -> bool {
        if self.clients[u].udfs.len() >= 3 || !self.clients[u].profile.has_udf {
            return self.op_get_delta(u, sid);
        }
        let name = format!("udf{}", self.clients[u].udfs.len() + 1);
        match self.retry(|b| b.create_udf(sid, &name)) {
            Ok(v) => {
                self.clients[u].udfs.push(v.volume);
                true
            }
            Err(_) => false,
        }
    }

    fn op_delete_volume(&mut self, u: usize, sid: SessionId) -> bool {
        if self.clients[u].udfs.is_empty() {
            return self.retry(|b| b.list_volumes(sid)).is_ok();
        }
        let idx = {
            let c = &mut self.clients[u];
            c.rng.gen_range(0..c.udfs.len())
        };
        let vol = self.clients[u].udfs.swap_remove(idx);
        let ok = self.retry(|b| b.delete_volume(sid, vol)).is_ok();
        self.clients[u].files.retain(|f| f.volume != vol);
        self.clients[u].dirs.retain(|d| d.volume != vol);
        ok
    }
}

/// The coordinator partition: owns the daily maintenance GC and the §5.4
/// attack episodes. It runs between day slices, while every shard partition
/// is parked on the barrier, so its cross-shard effects (bans, GC sweeps)
/// never race client activity.
struct CoordinatorSim {
    ctx: Arc<PartitionCtx>,
    backend: Arc<Backend>,
    rng: SmallRng,
    files: FileModel,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    attacks: Vec<AttackState>,
    report: DriverReport,
    /// Whole-population counters merged at the last day boundary — the
    /// attack waves scale off these ("× normal" multipliers).
    baseline: DriverReport,
    /// How much virtual time the baseline counters cover (the shard
    /// partitions have already finished the current day when they are
    /// merged).
    baseline_window: SimTime,
}

impl CoordinatorSim {
    fn push_event(&mut self, t: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            t,
            seq: self.seq,
            kind,
        }));
    }

    fn run_until(&mut self, end: SimTime) {
        while self.queue.peek().is_some_and(|Reverse(ev)| ev.t < end) {
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.ctx.set_time(ev.t);
            fault::clear_tags();
            match ev.kind {
                EventKind::Maintenance => self.on_maintenance(ev.t),
                EventKind::AttackWave(i) => self.on_attack_wave(i as usize, ev.t),
                EventKind::SessionStart(_) | EventKind::Op(_) | EventKind::SessionEnd(_) => {
                    unreachable!("client event in the coordinator partition")
                }
            }
        }
    }

    fn setup_attacks(&mut self, cfg: &WorkloadConfig) {
        for (i, script) in AttackScript::paper_attacks().into_iter().enumerate() {
            if script.start >= cfg.horizon() {
                continue;
            }
            let user = UserId::new(10_000_000 + i as u64);
            let token = self.backend.register_user(user);
            // The content the attacker distributes.
            let root = self.backend.store.get_root(user).unwrap().volume;
            for f in 0..5 {
                let spec = self.files.new_file(&mut self.rng);
                let node = self
                    .backend
                    .store
                    .make_node(
                        user,
                        root,
                        None,
                        NodeKind::File,
                        &format!("leak{f}_{}", spec.name),
                        SimTime::ZERO,
                    )
                    .unwrap();
                let size = spec.size.max(20_000_000); // big media payloads
                let _ = self.backend.store.make_content(
                    user,
                    root,
                    node.node,
                    spec.hash,
                    size,
                    SimTime::ZERO,
                );
                self.backend.blobs.put(spec.hash, size, None, SimTime::ZERO);
            }
            let start = script.start;
            self.attacks.push(AttackState {
                script,
                user,
                token,
                responded: false,
            });
            self.push_event(start, EventKind::AttackWave(i as u8));
        }
    }

    fn on_maintenance(&mut self, t: SimTime) {
        self.report.maintenance_runs += 1;
        self.report.uploadjobs_reaped += self.backend.run_maintenance() as u64;
        self.push_event(t + SimDuration::from_days(1), EventKind::Maintenance);
    }

    fn on_attack_wave(&mut self, i: usize, t: SimTime) {
        let (intensity, done, should_respond, token, user) = {
            let a = &self.attacks[i];
            (
                a.script.intensity(t),
                t >= a.script.end(),
                a.script.responded(t) && !a.responded,
                a.token,
                a.user,
            )
        };
        if should_respond {
            // Engineers notice and pull the plug (§5.4): ban the user.
            self.backend.ban_user(user);
            self.attacks[i].responded = true;
            self.report.users_banned += 1;
        }
        if done {
            return;
        }
        // Baselines from the whole population's merged counters so
        // multipliers mean "× normal". Normalize by the window those
        // counters actually cover, not the wave time.
        let hours = (self.baseline_window.as_secs_f64() / 3600.0).max(1.0);
        let normal_sessions_per_min =
            (self.baseline.sessions_opened as f64 / hours / 60.0).max(0.5);
        let normal_ops_per_min = (self.baseline.ops_executed as f64 / hours / 60.0).max(0.5);

        let a = &self.attacks[i];
        let bot_sessions =
            (normal_sessions_per_min * a.script.auth_multiplier * intensity).round() as u64;
        let mut bot_ops_budget =
            (normal_ops_per_min * a.script.storage_multiplier * intensity).round() as u64;

        // Attacker's distributed files (fetched fresh each wave; empty
        // after the ban's cleanup).
        let attacker_files: Vec<(VolumeId, u1_core::NodeId)> = self
            .backend
            .store
            .get_root(user)
            .ok()
            .and_then(|root| {
                self.backend
                    .store
                    .get_from_scratch(user, root.volume)
                    .ok()
                    .map(|(_, nodes)| {
                        nodes
                            .iter()
                            .filter(|n| n.content.is_some())
                            .map(|n| (root.volume, n.node))
                            .collect()
                    })
            })
            .unwrap_or_default();

        for _ in 0..bot_sessions.min(5_000) {
            match self.backend.open_session(token) {
                Ok(h) => {
                    self.report.attack_sessions += 1;
                    // Each bot leeches a few ops from the shared account.
                    let ops = self.rng.gen_range(1..=8).min(bot_ops_budget.max(1));
                    for _ in 0..ops {
                        if bot_ops_budget == 0 {
                            break;
                        }
                        bot_ops_budget -= 1;
                        self.report.attack_ops += 1;
                        if !attacker_files.is_empty() && self.rng.gen_range(0.0..1.0) < 0.85 {
                            let (v, n) =
                                attacker_files[self.rng.gen_range(0..attacker_files.len())];
                            let _ = self.backend.download(h.session, v, n);
                        } else {
                            // Leech uploads: push new content through the
                            // shared account.
                            let spec = self.files.new_file(&mut self.rng);
                            if let Ok(root) = self.backend.store.get_root(user) {
                                if let Ok(node) = self.backend.make_node(
                                    h.session,
                                    root.volume,
                                    None,
                                    NodeKind::File,
                                    &spec.name,
                                ) {
                                    let _ = self.backend.upload_file(
                                        h.session,
                                        root.volume,
                                        node.node,
                                        spec.hash,
                                        spec.size,
                                    );
                                }
                            }
                        }
                    }
                    let _ = self.backend.close_session(h.session);
                }
                Err(_) => {
                    // Post-ban: a storm of failing authentications.
                    self.report.sessions_auth_failed += 1;
                }
            }
        }
        self.push_event(
            t + SimDuration::from_secs(60),
            EventKind::AttackWave(i as u8),
        );
    }
}

/// Packs `weights.len()` shards onto `workers` bins, heaviest-first onto
/// the currently lightest bin (LPT / greedy makespan). Deterministic: ties
/// break toward the lower shard index and the lower bin index. Packing is
/// a pure wall-clock decision — every shard still runs exactly its own
/// events, so results are packing-invariant.
fn pack_lpt(weights: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (Reverse(weights[i]), i));
    let mut loads = vec![0u64; workers];
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for i in order {
        let mut best = 0;
        for (w, &load) in loads.iter().enumerate() {
            if load < loads[best] {
                best = w;
            }
        }
        // A zero-weight shard still costs a lock + queue peek; floor at 1
        // so empty shards spread instead of piling onto one bin.
        loads[best] += weights[i].max(1);
        bins[best].push(i);
    }
    bins
}

/// The driver itself.
pub struct Driver {
    cfg: WorkloadConfig,
    backend: Arc<Backend>,
    clock: u1_core::SimClock,
    shards: Vec<ShardSim>,
    coordinator: CoordinatorSim,
}

impl Driver {
    pub fn new(cfg: WorkloadConfig, backend: Arc<Backend>, clock: u1_core::SimClock) -> Self {
        let shard_count = backend.store.num_shards() as usize;
        // Shard partitions use namespaces 0..shard_count; the coordinator
        // takes the one past the end. Strided file models keep every
        // partition's names and synthetic content ids disjoint.
        let stride = shard_count as u64 + 1;
        let expected_files = cfg.users * 60;
        // The client-side view of the fault plane: the backend's plan, but
        // its own derived seed stream, so injected client crashes are
        // independent of (and don't perturb) the server-side rolls.
        let faults = Arc::new(FaultInjector::new(
            backend.config().fault.clone(),
            rngx::derive_seed(cfg.seed, "client-faults", 0),
        ));
        let retry_policy = backend.config().fault.client_retry;
        let shards = (0..shard_count)
            .map(|s| ShardSim {
                origin: s as u32,
                ctx: PartitionCtx::new(s as u32),
                backend: Arc::clone(&backend),
                clients: Vec::new(),
                files: FileModel::with_partition(expected_files, cfg.seed, s as u64, stride),
                queue: BinaryHeap::new(),
                seq: 0,
                report: DriverReport::default(),
                faults: Arc::clone(&faults),
                retry_policy,
                breaker: CircuitBreaker::driver_default(),
                events_processed: 0,
                dir_scratch: Vec::new(),
            })
            .collect();
        let coordinator = CoordinatorSim {
            ctx: PartitionCtx::new(shard_count as u32),
            backend: Arc::clone(&backend),
            rng: SmallRng::seed_from_u64(rngx::derive_seed(cfg.seed, "driver", 0)),
            files: FileModel::with_partition(expected_files, cfg.seed, shard_count as u64, stride),
            queue: BinaryHeap::new(),
            seq: 0,
            attacks: Vec::new(),
            report: DriverReport::default(),
            baseline: DriverReport::default(),
            baseline_window: SimTime::ZERO,
        };
        Self {
            cfg,
            backend,
            clock,
            shards,
            coordinator,
        }
    }

    // ----- setup ------------------------------------------------------------

    fn setup(&mut self) {
        // Population. User ids start at 1 (id 0 is the "unknown" sentinel).
        // Profile and behavior substreams are keyed by the global user
        // index, so a user's whole life is independent of partition layout.
        for i in 0..self.cfg.users {
            let user = UserId::new(i + 1);
            let mut rng = rngx::sub_rng(self.cfg.seed, "user", i);
            let profile = sample_profile(&mut rng);
            let token = self.backend.register_user(user);
            let root = self
                .backend
                .store
                .get_root(user)
                .expect("root volume exists")
                .volume;
            let shard = self.backend.store.shard_of(user).raw() as usize;
            self.shards[shard].clients.push(ClientState {
                user,
                token,
                profile,
                rng: rngx::sub_rng(self.cfg.seed, "client", i),
                session: None,
                session_end: SimTime::ZERO,
                ops_left: 0,
                last_op: ApiOpKind::Authenticate,
                root,
                udfs: Vec::new(),
                files: Vec::new(),
                dirs: Vec::new(),
                known_gen: HashMap::new(),
                pending_upload: None,
                crashed_upload: None,
                move_counter: 0,
                bulk: false,
                tiny_budget: 2,
            });
        }
        for sim in &mut self.shards {
            sim.seed_population(&self.cfg);
        }
        // Shares between consenting users (1.8% of the population, §6.3):
        // a ring over the sharers in global user order.
        let mut sharers: Vec<(u64, usize, usize)> = Vec::new();
        for (s, sim) in self.shards.iter().enumerate() {
            for (u, c) in sim.clients.iter().enumerate() {
                if c.profile.shares {
                    sharers.push((c.user.raw(), s, u));
                }
            }
        }
        sharers.sort_unstable();
        for k in 0..sharers.len() {
            let (_, si, ui) = sharers[k];
            let (_, sj, uj) = sharers[(k + 1) % sharers.len()];
            if (si, ui) == (sj, uj) {
                continue;
            }
            let owner = self.shards[si].clients[ui].user;
            let to = self.shards[sj].clients[uj].user;
            let volume = self.shards[si].clients[ui]
                .udfs
                .first()
                .copied()
                .unwrap_or(self.shards[si].clients[ui].root);
            let _ = self
                .backend
                .store
                .create_share(owner, volume, to, SimTime::ZERO);
        }
        // First session per user.
        for sim in &mut self.shards {
            for u in 0..sim.clients.len() {
                let gap = {
                    let c = &mut sim.clients[u];
                    sessions::next_session_gap(&mut c.rng, &c.profile, SimTime::ZERO)
                };
                // Spread initial arrivals over the first day regardless of
                // rate.
                let t0 = SimTime::from_micros(
                    gap.as_micros() % SimDuration::from_days(1).as_micros().max(1),
                );
                sim.push_event(t0, EventKind::SessionStart(u as u32));
            }
        }
        // Daily maintenance at 03:00 (quiet hours).
        self.coordinator
            .push_event(SimTime::from_hours(3), EventKind::Maintenance);
        // Attacks.
        if self.cfg.attacks {
            let cfg = self.cfg.clone();
            self.coordinator.setup_attacks(&cfg);
        }
    }

    /// Runs the whole window and returns the report. The trace lands in
    /// the backend's sink.
    pub fn run(mut self) -> DriverReport {
        {
            let _g = u1_core::partition::install(self.coordinator.ctx.clone());
            self.setup();
            // Commit the seeded population (and the attack payloads) so
            // every partition sees it from day 0.
            self.backend.seal_content_epoch();
        }
        let horizon = self.cfg.horizon();
        let days = self.cfg.days;
        let shard_count = self.shards.len();
        let workers = match self.cfg.workers {
            0 => shard_count.max(1),
            w => w.min(shard_count).max(1),
        };
        let coord_origin = self.coordinator.ctx.origin();
        // One lock per shard partition: shards migrate between workers when
        // the day-boundary re-pack moves them, so they cannot be owned by
        // one thread's stack. Workers lock only their assigned shards while
        // running a day; the coordinator locks each briefly while every
        // worker is parked — the locks are never contended, they only carry
        // ownership across days.
        let shards: Vec<Mutex<ShardSim>> = self.shards.drain(..).map(Mutex::new).collect();
        // Day 0 packs by client count (the only load signal available
        // before anything ran); each later day re-packs by the event count
        // each shard actually processed the previous day.
        let init_weights: Vec<u64> = shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").clients.len() as u64)
            .collect();
        let assignments: Vec<Mutex<Vec<usize>>> = pack_lpt(&init_weights, workers)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let timers = PhaseTimers::new();
        let barrier = Barrier::new(workers + 1);
        let coordinator = &mut self.coordinator;
        let backend = &self.backend;
        std::thread::scope(|s| {
            for w in 0..workers {
                let barrier = &barrier;
                let shards = &shards;
                let assignments = &assignments;
                let timers = &timers;
                s.spawn(move || {
                    let mut mine: Vec<usize> = Vec::new();
                    for day in 0..days {
                        let day_end = SimTime::from_days(day + 1).min(horizon);
                        mine.clear();
                        mine.extend_from_slice(
                            &assignments[w].lock().expect("assignment lock poisoned"),
                        );
                        for &i in &mine {
                            let mut sim = shards[i].lock().expect("shard lock poisoned");
                            let _g = u1_core::partition::install(sim.ctx.clone());
                            let t_run = std::time::Instant::now();
                            sim.run_until(day_end);
                            timers.add(Phase::WorkerRun, saturating_nanos(t_run));
                            // Drain this partition's buffered day run *off*
                            // the barrier: flushing in parallel here instead
                            // of serially on the coordinator while everyone
                            // waits. Per-origin order is preserved, so the
                            // canonical trace is unchanged.
                            let t_flush = std::time::Instant::now();
                            backend.flush_trace_origin(sim.origin);
                            timers.add(Phase::DayFlush, saturating_nanos(t_flush));
                        }
                        let t_park = std::time::Instant::now();
                        // All partitions quiescent: let the coordinator run.
                        barrier.wait();
                        // Coordinator done; next day slice may start.
                        barrier.wait();
                        timers.add(Phase::BarrierPark, saturating_nanos(t_park));
                    }
                });
            }
            let mut prev_events: Vec<u64> = vec![0; shard_count];
            let mut deltas: Vec<u64> = vec![0; shard_count];
            for day in 0..days {
                let day_end = SimTime::from_days(day + 1).min(horizon);
                barrier.wait();
                {
                    let _g = u1_core::partition::install(coordinator.ctx.clone());
                    // Fold the parked shards' reports into the attack
                    // baseline and read the per-day event deltas that drive
                    // the next day's packing. The locks are uncontended:
                    // every worker is parked on the barrier.
                    let mut baseline = coordinator.report.clone();
                    for (i, shard) in shards.iter().enumerate() {
                        let sim = shard.lock().expect("shard lock poisoned");
                        baseline.absorb(&sim.report);
                        deltas[i] = sim.events_processed - prev_events[i];
                        prev_events[i] = sim.events_processed;
                    }
                    coordinator.baseline = baseline;
                    coordinator.baseline_window = day_end;
                    let t_coord = std::time::Instant::now();
                    coordinator.run_until(day_end);
                    coordinator.ctx.set_time(day_end);
                    timers.add(Phase::Coordinator, saturating_nanos(t_coord));
                    let t_seal = std::time::Instant::now();
                    backend.seal_content_epoch();
                    timers.add(Phase::Seal, saturating_nanos(t_seal));
                    // Every shard origin was drained by its worker before
                    // parking; only the coordinator's own day records
                    // (attacks, maintenance) remain buffered.
                    let t_flush = std::time::Instant::now();
                    backend.flush_trace_origin(coord_origin);
                    timers.add(Phase::DayFlush, saturating_nanos(t_flush));
                    if day + 1 < days {
                        for (slot, bin) in assignments.iter().zip(pack_lpt(&deltas, workers)) {
                            *slot.lock().expect("assignment lock poisoned") = bin;
                        }
                    }
                }
                barrier.wait();
            }
        });
        self.clock.set(horizon);
        // Run-final full flush: leftover buffers (legacy origin 0 emitters,
        // anything recorded outside a partition ctx) and sink I/O flushing.
        self.backend.flush_trace();
        let mut report = self.coordinator.report.clone();
        for shard in &shards {
            report.absorb(&shard.lock().expect("shard lock poisoned").report);
        }
        report.users = self.cfg.users;
        report.timing = Measured(timers.snapshot());
        if std::env::var("U1_DRIVER_TIMING").is_ok() {
            let t = report.timing.0;
            eprintln!(
                "[driver-timing] run {:.2}s park {:.2}s flush {:.2}s coordinator {:.2}s seal {:.2}s (thread-seconds)",
                t.worker_run_nanos as f64 / 1e9,
                t.barrier_park_nanos as f64 / 1e9,
                t.day_flush_nanos as f64 / 1e9,
                t.coordinator_nanos as f64 / 1e9,
                t.seal_nanos as f64 / 1e9,
            );
        }
        let cache = self.backend.token_cache_stats();
        report.token_cache_hits = cache.hits;
        report.token_cache_misses = cache.misses;
        let faults = self.backend.fault_stats();
        report.rpc_timeouts = faults.rpc_timeouts;
        report.rpc_retries = faults.rpc_retries;
        report.auth_fallbacks = faults.auth_fallbacks;
        report.notify_dropped = faults.notify_dropped;
        report.part_put_failures = self.backend.blobs.stats().part_put_failures;
        report.trace_io_errors = self.backend.trace_io_errors();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use u1_core::SimClock;
    use u1_server::BackendConfig;
    use u1_trace::MemorySink;

    fn run_quick_with(workers: usize) -> (DriverReport, Vec<u1_trace::TraceRecord>) {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig::default(),
            Arc::new(clock.clone()),
            sink.clone(),
        ));
        let cfg = WorkloadConfig {
            users: 120,
            days: 3,
            seed: 11,
            attacks: false,
            seed_files: 0.5,
            workers,
        };
        let driver = Driver::new(cfg, backend, clock);
        let report = driver.run();
        (report, sink.take_sorted())
    }

    fn run_quick() -> (DriverReport, Vec<u1_trace::TraceRecord>) {
        run_quick_with(0)
    }

    #[test]
    fn quick_run_produces_a_coherent_trace() {
        let (report, records) = run_quick();
        assert!(report.sessions_opened > 150, "{report:?}");
        assert!(report.ops_executed > 20, "{report:?}");
        assert!(report.uploads + report.downloads > 5, "{report:?}");
        assert!(!records.is_empty());
        // Timestamps are sorted and within the window.
        assert!(records.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(records.iter().all(|r| r.t <= SimTime::from_days(3)));
        // All four record families appear.
        let mut kinds = std::collections::HashSet::new();
        for r in &records {
            kinds.insert(r.payload.request_type());
        }
        for k in ["session", "storage_done", "rpc", "auth"] {
            assert!(kinds.contains(k), "missing {k} records");
        }
    }

    #[test]
    fn trace_is_deterministic_given_seed() {
        let (r1, t1) = run_quick();
        let (r2, t2) = run_quick();
        assert_eq!(r1, r2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (r1, t1) = run_quick_with(1);
        let (r4, t4) = run_quick_with(4);
        assert_eq!(r1, r4, "report must be worker-count-invariant");
        assert_eq!(t1.len(), t4.len());
        assert_eq!(t1, t4, "canonical trace must be worker-count-invariant");
    }

    #[test]
    fn lpt_packing_is_deterministic_and_balanced() {
        // Heaviest shard first onto the emptiest bin; ties to lower index.
        let bins = pack_lpt(&[5, 9, 1, 7, 3], 2);
        // Placement order 9,7,5,3,1: loads end at bin0 = 9+3+1 = 13,
        // bin1 = 7+5 = 12 — within one item of optimal. Every shard
        // appears exactly once.
        assert_eq!(bins, vec![vec![1, 4, 2], vec![3, 0]]);
        let mut all: Vec<usize> = bins.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // Zero weights floor at 1 so empty shards still spread.
        let bins = pack_lpt(&[0, 0, 0, 0], 2);
        assert_eq!(bins.iter().map(Vec::len).collect::<Vec<_>>(), vec![2, 2]);
        // More workers than shards leaves trailing bins empty, never panics.
        let bins = pack_lpt(&[4], 3);
        assert_eq!(bins, vec![vec![0], vec![], vec![]]);
        // Identical input ⇒ identical packing (the repack is wall-clock
        // only, but the schedule itself must be reproducible).
        assert_eq!(pack_lpt(&[5, 9, 1, 7, 3], 2), pack_lpt(&[5, 9, 1, 7, 3], 2));
    }

    /// Locks the exact observable output of the driver — full report plus a
    /// SHA-1 over every canonical trace line and its `(origin, seq)` stamp.
    /// The constants were recorded on the pre-optimization code; the
    /// zero-allocation serializer, the k-way-merge `take_sorted`, and the
    /// batched sink path must all be byte-for-byte invisible here. If this
    /// test fails, a perf change altered observable behavior.
    #[test]
    fn golden_trace_and_report_are_unchanged() {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig::default(),
            Arc::new(clock.clone()),
            sink.clone(),
        ));
        let cfg = WorkloadConfig {
            users: 120,
            days: 3,
            seed: 11,
            attacks: true,
            seed_files: 0.5,
            workers: 0,
        };
        let report = Driver::new(cfg, backend, clock).run();
        let records = sink.take_sorted();
        assert_eq!(records.len(), 8184);
        let mut buf = String::new();
        for r in &records {
            buf.push_str(&u1_trace::csvline::to_line(r));
            buf.push_str(&format!("|{}|{}\n", r.origin, r.seq));
        }
        let hash = u1_core::Sha1::digest(buf.as_bytes()).to_hex();
        assert_eq!(hash, "78be5180fee062f073b8838c0cb695e681de3f1b");
        assert_eq!(
            report,
            DriverReport {
                users: 120,
                seeded_files: 246,
                sessions_opened: 338,
                sessions_auth_failed: 9,
                ops_executed: 1884,
                op_errors: 0,
                uploads: 100,
                upload_updates: 6,
                uploads_deduplicated: 14,
                bytes_uploaded: 101_463_468,
                downloads: 23,
                bytes_downloaded: 25_701_437,
                unlinks: 33,
                attack_sessions: 0,
                attack_ops: 0,
                users_banned: 0,
                maintenance_runs: 3,
                uploadjobs_reaped: 0,
                token_cache_hits: 0,
                token_cache_misses: 0,
                client_retries: 0,
                breaker_fastfails: 0,
                uploads_interrupted: 0,
                uploads_resumed: 0,
                uploads_abandoned: 0,
                rescans_forced: 0,
                rpc_timeouts: 0,
                rpc_retries: 0,
                auth_fallbacks: 0,
                notify_dropped: 0,
                part_put_failures: 0,
                trace_io_errors: 0,
                // `Measured` compares equal regardless of the run's actual
                // timings; listed so the literal stays exhaustive.
                timing: Measured(PhaseNanos::default()),
            }
        );
    }

    /// The differential determinism guarantee of the fault plane, half 1:
    /// a backend constructed with an *explicit* `FaultPlan::none()` (the
    /// injector object exists, every probability is zero, no outage
    /// windows) reproduces the golden trace SHA and report byte-for-byte.
    /// Injection must be free when disabled — not just "small".
    #[test]
    fn explicit_none_fault_plan_reproduces_the_golden_trace() {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig {
                fault: u1_core::fault::FaultPlan::none(),
                ..Default::default()
            },
            Arc::new(clock.clone()),
            sink.clone(),
        ));
        let cfg = WorkloadConfig {
            users: 120,
            days: 3,
            seed: 11,
            attacks: true,
            seed_files: 0.5,
            workers: 0,
        };
        let report = Driver::new(cfg, backend, clock).run();
        let records = sink.take_sorted();
        assert_eq!(records.len(), 8184);
        let mut buf = String::new();
        for r in &records {
            buf.push_str(&u1_trace::csvline::to_line(r));
            buf.push_str(&format!("|{}|{}\n", r.origin, r.seq));
        }
        let hash = u1_core::Sha1::digest(buf.as_bytes()).to_hex();
        assert_eq!(hash, "78be5180fee062f073b8838c0cb695e681de3f1b");
        assert_eq!(report.rpc_timeouts + report.client_retries, 0);
        assert_eq!(report.uploads_interrupted, 0);
    }

    fn run_faulted(workers: usize) -> (DriverReport, Vec<u1_trace::TraceRecord>) {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig {
                fault: u1_core::fault::FaultPlan::light(SimDuration::from_days(3)),
                ..Default::default()
            },
            Arc::new(clock.clone()),
            sink.clone(),
        ));
        let cfg = WorkloadConfig {
            users: 120,
            days: 3,
            seed: 11,
            attacks: false,
            seed_files: 0.5,
            workers,
        };
        let report = Driver::new(cfg, backend, clock).run();
        (report, sink.take_sorted())
    }

    /// Half 2: a *nonzero* plan is deterministic — same seed and plan give
    /// the same faults, retries, and trace regardless of worker count —
    /// and actually fires (visible retries / error classes in the trace).
    #[test]
    fn faulted_run_is_deterministic_across_worker_counts() {
        let (r1, t1) = run_faulted(1);
        let (r4, t4) = run_faulted(4);
        assert_eq!(r1, r4, "faulted report must be worker-count-invariant");
        assert_eq!(t1, t4, "faulted trace must be worker-count-invariant");
        // The plan fired: server-side timeouts with retries, and the trace
        // carries attempt/error-class annotations.
        assert!(r1.rpc_timeouts > 0, "{r1:?}");
        assert!(r1.rpc_retries > 0, "{r1:?}");
        assert!(
            t1.iter().any(|r| r.attempt > 1),
            "no retried attempts in trace"
        );
        assert!(
            t1.iter().any(|r| r.error_class.is_some()),
            "no error classes in trace"
        );
        // And the run survived: a light plan degrades, it doesn't wedge.
        assert!(r1.sessions_opened > 100, "{r1:?}");
        assert!(r1.uploads > 10, "{r1:?}");
    }

    /// The differential test for the batched path: a run whose backend logs
    /// through a `BufferedSink` (day-boundary + threshold flushes,
    /// `record_batch_owned` delivery) must produce the same report and a
    /// byte-identical canonical trace as the per-record run.
    #[test]
    fn buffered_sink_run_is_byte_identical_to_per_record_run() {
        let (direct_report, direct_trace) = run_quick_with(2);

        let clock = SimClock::new();
        let inner = Arc::new(MemorySink::new());
        let buffered = Arc::new(u1_trace::BufferedSink::new(Arc::clone(&inner)));
        let backend = Arc::new(Backend::new(
            BackendConfig::default(),
            Arc::new(clock.clone()),
            buffered,
        ));
        let cfg = WorkloadConfig {
            users: 120,
            days: 3,
            seed: 11,
            attacks: false,
            seed_files: 0.5,
            workers: 2,
        };
        let buffered_report = Driver::new(cfg, backend, clock).run();
        let buffered_trace = inner.take_sorted();

        assert_eq!(direct_report, buffered_report);
        assert_eq!(direct_trace.len(), buffered_trace.len());
        for (a, b) in direct_trace.iter().zip(&buffered_trace) {
            assert_eq!(u1_trace::csvline::to_line(a), u1_trace::csvline::to_line(b));
            assert_eq!((a.origin, a.seq), (b.origin, b.seq));
        }
    }

    fn run_quick_cached(workers: usize) -> (DriverReport, Vec<u1_trace::TraceRecord>) {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig {
                auth_cache_ttl: Some(SimDuration::from_hours(8)),
                ..Default::default()
            },
            Arc::new(clock.clone()),
            sink.clone(),
        ));
        let cfg = WorkloadConfig {
            users: 120,
            days: 3,
            seed: 11,
            attacks: false,
            seed_files: 0.5,
            workers,
        };
        let report = Driver::new(cfg, backend, clock).run();
        (report, sink.take_sorted())
    }

    /// With the memcached tier enabled, repeat opens hit the cache — and
    /// because each token is only ever touched by its owning partition, the
    /// hit/miss counters and the trace stay worker-count-invariant.
    #[test]
    fn token_cache_hits_are_worker_count_invariant() {
        let (r1, t1) = run_quick_cached(1);
        let (r4, t4) = run_quick_cached(4);
        assert_eq!(r1, r4, "cached report must be worker-count-invariant");
        assert_eq!(t1, t4, "cached trace must be worker-count-invariant");
        assert!(r1.token_cache_hits > 0, "{r1:?}");
        assert!(r1.token_cache_misses > 0, "{r1:?}");
        // Every session-open attempt consults the cache exactly once: hits
        // skip the auth round trip entirely, misses fall through to it.
        assert_eq!(
            r1.token_cache_hits + r1.token_cache_misses,
            r1.sessions_opened + r1.sessions_auth_failed,
            "{r1:?}"
        );
    }

    #[test]
    fn attacks_inject_visible_spikes_and_get_banned() {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig::default(),
            Arc::new(clock.clone()),
            sink.clone(),
        ));
        let cfg = WorkloadConfig {
            users: 100,
            days: 6, // covers attacks on days 4 and 5
            seed: 13,
            attacks: true,
            seed_files: 0.3,
            workers: 0,
        };
        let report = Driver::new(cfg, backend, clock).run();
        assert!(report.attack_sessions > 50, "{report:?}");
        assert!(report.attack_ops > 50, "{report:?}");
        assert_eq!(report.users_banned, 2, "both in-window attacks answered");
        assert!(
            report.sessions_auth_failed > 20,
            "post-ban auth storm: {report:?}"
        );
    }

    #[test]
    fn update_fraction_is_near_ten_percent() {
        let clock = SimClock::new();
        let sink = Arc::new(MemorySink::new());
        let backend = Arc::new(Backend::new(
            BackendConfig::default(),
            Arc::new(clock.clone()),
            sink,
        ));
        let cfg = WorkloadConfig {
            users: 250,
            days: 5,
            seed: 17,
            attacks: false,
            seed_files: 1.0,
            workers: 0,
        };
        let report = Driver::new(cfg, backend, clock).run();
        assert!(report.uploads > 150, "need volume: {report:?}");
        let frac = report.upload_updates as f64 / report.uploads as f64;
        assert!((0.04..=0.20).contains(&frac), "update fraction {frac}");
    }
}
