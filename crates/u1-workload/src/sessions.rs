//! Session arrivals, durations and the active/cold split.

use crate::calibration;
use crate::users::{UserClass, UserProfile};
use rand::rngs::SmallRng;
use rand::Rng;
use u1_core::rngx;
use u1_core::{SimDuration, SimTime};

/// Hour-of-day activity curve. U1 clients start with the user's machine, so
/// load follows working hours: up to ~10× more upload volume in the central
/// hours than at night (Fig. 2(a)), and auth activity 50–60% higher by day
/// (Fig. 15).
pub fn diurnal_factor(t: SimTime) -> f64 {
    const HOURLY: [f64; 24] = [
        0.30, 0.22, 0.18, 0.16, 0.18, 0.25, // 00–05
        0.45, 0.80, 1.20, 1.55, 1.75, 1.85, // 06–11
        1.80, 1.85, 1.80, 1.70, 1.55, 1.40, // 12–17
        1.25, 1.10, 0.95, 0.75, 0.55, 0.40, // 18–23
    ];
    let day_factor = match t.day_of_week() {
        0 => calibration::MONDAY_OVER_WEEKEND, // Monday peak (Fig. 15)
        5 | 6 => 0.92,                         // weekend dip
        _ => 1.05,
    };
    HOURLY[t.hour_of_day() as usize] * day_factor
}

/// Hour-of-day bias of the R/W ratio (§5.1): "from 6am to 3pm the R/W
/// ratio shows a linear decay" — downloads dominate when clients start in
/// the morning, uploads during working hours. Returns a multiplier applied
/// to the probability of choosing a download over an upload.
pub fn download_bias(t: SimTime) -> f64 {
    let h = t.hour_of_day() as f64;
    if (6.0..=15.0).contains(&h) {
        // Linear decay from 1.5 at 6am to 0.9 at 3pm.
        1.5 - (h - 6.0) / 9.0 * 0.6
    } else {
        1.1
    }
}

/// Gap until a user's next session: a non-homogeneous Poisson arrival
/// with the diurnal/weekday rate, sampled by thinning (sample at the peak
/// rate, accept with probability rate(t)/peak) so arrivals concentrate in
/// the busy hours instead of lagging the rate by one gap.
pub fn next_session_gap(rng: &mut SmallRng, profile: &UserProfile, now: SimTime) -> SimDuration {
    const PEAK: f64 = 2.2; // max of diurnal_factor over hours × weekdays
    let peak_rate_per_sec = profile.sessions_per_day * PEAK / 86_400.0;
    let mut t = now;
    for _ in 0..64 {
        let gap = rngx::sample_exp(rng, 1.0 / peak_rate_per_sec).clamp(30.0, 6.0 * 86_400.0);
        t += SimDuration::from_secs_f64(gap);
        let accept = diurnal_factor(t) / PEAK;
        if rng.gen_range(0.0..1.0) < accept {
            break;
        }
    }
    t.since(now).max(SimDuration::from_secs(30))
}

/// What a session will be.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    pub duration: SimDuration,
    /// Will this session perform data management at all? Only ~5.6% do
    /// (§7.3).
    pub active: bool,
    /// Target number of operations for active sessions (heavy-tailed:
    /// 80% ≤ 92 ops, the top 20% holding ~96.7% of all data ops).
    pub planned_ops: u64,
}

/// Per-class probability that a session is active, averaging to the
/// paper's 5.57% under the §6.1 class shares.
pub fn active_probability(class: UserClass) -> f64 {
    match class {
        UserClass::Occasional => 0.017,
        UserClass::UploadOnly => 0.14,
        UserClass::DownloadOnly => 0.14,
        UserClass::Heavy => 0.27,
    }
}

/// Plans a session for a user.
pub fn plan_session(rng: &mut SmallRng, profile: &UserProfile) -> SessionPlan {
    let active = rng.gen_range(0.0..1.0) < active_probability(profile.class);
    if !active {
        // Cold session: 34% die within a second (NAT/firewall cuts, §7.3),
        // the rest follow a log-normal with a ~3% tail beyond 8 hours.
        let duration = if rng.gen_range(0.0..1.0) < 0.34 {
            SimDuration::from_secs_f64(rng.gen_range(0.05..1.0))
        } else {
            let secs = rngx::sample_lognormal(rng, (25.0 * 60.0f64).ln(), 1.6);
            SimDuration::from_secs_f64(secs.min(7.0 * 86_400.0))
        };
        return SessionPlan {
            duration,
            active: false,
            planned_ops: 0,
        };
    }
    // Active session: ops from a very heavy tail. The per-user activity
    // weight multiplies op volume so traffic inequality (Fig. 7(c))
    // reaches the paper's Gini ≈ 0.89; occasional users issue few ops by
    // definition.
    let class_factor = match profile.class {
        UserClass::Occasional => 0.12,
        _ => 1.0,
    };
    let raw = rngx::sample_pareto(rng, 0.5, 9.0).min(9_000.0);
    let mult = (0.5 + 2.2 * profile.weight).min(600.0) * class_factor;
    let planned_ops = ((raw * mult).round() as u64).clamp(1, 6_000);
    // Active sessions are longer (they have work to do), and the heavy
    // tail of planned work stretches them further — Fig. 16 shows active
    // sessions reaching into days while 97% of *all* sessions stay under
    // 8h (actives are only ~5.6% of sessions).
    let work_stretch = ((planned_ops as f64 / 150.0).sqrt()).clamp(1.0, 6.0);
    let secs = rngx::sample_lognormal(rng, (145.0 * 60.0f64).ln(), 1.0) * work_stretch;
    SessionPlan {
        duration: SimDuration::from_secs_f64(secs.min(7.0 * 86_400.0)),
        active: true,
        planned_ops,
    }
}

/// Think time between consecutive operations of one user: a burst/pause
/// mixture whose tail follows the Fig. 9 power law (`alpha` ∈ (1, 2)).
/// `bulk` marks machine-paced sessions (initial sync of a large tree —
/// Fig. 16's inner plot reaches 10^6 ops in one session, impossible at
/// human think-time): gaps shrink to server-turnaround scale.
pub fn interop_gap_with_mode(rng: &mut SmallRng, metadata_op: bool, bulk: bool) -> SimDuration {
    let gap = interop_gap(rng, metadata_op);
    if bulk {
        SimDuration::from_micros((gap.as_micros() / 6).max(200_000))
    } else {
        gap
    }
}

/// Think time between consecutive operations (human-paced).
pub fn interop_gap(rng: &mut SmallRng, metadata_op: bool) -> SimDuration {
    let (alpha, theta) = if metadata_op {
        (
            calibration::UNLINK_INTEROP_ALPHA,
            calibration::UNLINK_INTEROP_THETA,
        )
    } else {
        (
            calibration::UPLOAD_INTEROP_ALPHA,
            calibration::UPLOAD_INTEROP_THETA,
        )
    };
    if rng.gen_range(0.0..1.0) < 0.58 {
        // Burst region below the fitted power-law domain: sub-theta gaps
        // (directory-granularity sync fires operations in quick cascades).
        let lo = 0.05f64;
        let secs = lo * (theta / lo).powf(rng.gen_range(0.0..1.0));
        SimDuration::from_secs_f64(secs)
    } else {
        SimDuration::from_secs_f64(rngx::sample_pareto(rng, alpha, theta).min(6.0 * 3600.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::sample_profile;
    use rand::SeedableRng;

    #[test]
    fn diurnal_swing_is_roughly_10x() {
        let peak = (0..24)
            .map(|h| diurnal_factor(SimTime::from_hours(48 + h)))
            .fold(0.0f64, f64::max);
        let trough = (0..24)
            .map(|h| diurnal_factor(SimTime::from_hours(48 + h)))
            .fold(f64::MAX, f64::min);
        let swing = peak / trough;
        assert!((6.0..=14.0).contains(&swing), "swing {swing}");
    }

    #[test]
    fn monday_beats_weekend() {
        // Day 2 of the window is a Monday, day 0 a Saturday.
        let monday = diurnal_factor(SimTime::from_hours(2 * 24 + 12));
        let saturday = diurnal_factor(SimTime::from_hours(12));
        assert!(monday > saturday * 1.1);
    }

    #[test]
    fn session_population_statistics_match_paper() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut active = 0u32;
        let mut under_1s = 0u32;
        let mut under_8h = 0u32;
        let n = 60_000;
        for _ in 0..n {
            let profile = sample_profile(&mut rng);
            let plan = plan_session(&mut rng, &profile);
            active += plan.active as u32;
            under_1s += (plan.duration < SimDuration::from_secs(1)) as u32;
            under_8h += (plan.duration < SimDuration::from_hours(8)) as u32;
        }
        let f_active = active as f64 / n as f64;
        let f_1s = under_1s as f64 / n as f64;
        let f_8h = under_8h as f64 / n as f64;
        assert!(
            (0.035..=0.085).contains(&f_active),
            "active fraction {f_active}"
        );
        assert!((0.24..=0.40).contains(&f_1s), "sub-second fraction {f_1s}");
        assert!((0.93..=0.995).contains(&f_8h), "under-8h fraction {f_8h}");
    }

    #[test]
    fn active_session_ops_are_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ops: Vec<u64> = Vec::new();
        while ops.len() < 8_000 {
            let profile = sample_profile(&mut rng);
            let plan = plan_session(&mut rng, &profile);
            if plan.active {
                ops.push(plan.planned_ops);
            }
        }
        ops.sort_unstable();
        let p80 = ops[(ops.len() as f64 * 0.8) as usize];
        assert!((5..=600).contains(&p80), "p80 ops {p80} (paper: 92)");
        let total: u64 = ops.iter().sum();
        let top20: u64 = ops[(ops.len() as f64 * 0.8) as usize..].iter().sum();
        let share = top20 as f64 / total as f64;
        assert!(share > 0.80, "top-20% share {share} (paper: 0.967)");
    }

    #[test]
    fn interop_gaps_span_many_decades() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gaps: Vec<f64> = (0..20_000)
            .map(|_| interop_gap(&mut rng, false).as_secs_f64())
            .collect();
        let min = gaps.iter().cloned().fold(f64::MAX, f64::min);
        let max = gaps.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 1.0, "bursts exist: min {min}");
        assert!(max > 1_000.0, "long pauses exist: max {max}");
        // The tail beyond theta should be roughly power-law: compare CCDF
        // decay over one decade with the expected alpha.
        let theta = calibration::UPLOAD_INTEROP_THETA;
        let c1 = gaps.iter().filter(|&&g| g >= theta).count() as f64;
        let c10 = gaps.iter().filter(|&&g| g >= 10.0 * theta).count() as f64;
        let alpha_est = (c1 / c10).log10();
        assert!(
            (1.0..=2.2).contains(&alpha_est),
            "empirical tail exponent {alpha_est}"
        );
    }

    #[test]
    fn download_bias_decays_through_the_morning() {
        let six = download_bias(SimTime::from_hours(6));
        let noon = download_bias(SimTime::from_hours(12));
        let three = download_bias(SimTime::from_hours(15));
        assert!(six > noon && noon > three, "{six} {noon} {three}");
    }
}
