//! User population: activity classes and the heavy-tailed skew.
//!
//! §6.1 classifies users (by Drago et al.'s scheme) into occasional
//! (85.82%), upload-only (7.22%), download-only (2.34%) and heavy (4.62%),
//! and measures extreme inequality: the top 1% of active users account for
//! 65.6% of the traffic (Gini ≈ 0.89). We model each user with a class and
//! an *activity weight* drawn from a Pareto tail calibrated against that
//! inequality; the weight scales both session counts and per-session op
//! volume.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use u1_core::rngx;

use crate::calibration;

/// The §6.1 activity classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserClass {
    /// Transfers < 10KB over the month; mostly just online.
    Occasional,
    UploadOnly,
    DownloadOnly,
    Heavy,
}

impl UserClass {
    pub fn label(self) -> &'static str {
        match self {
            UserClass::Occasional => "occasional",
            UserClass::UploadOnly => "upload_only",
            UserClass::DownloadOnly => "download_only",
            UserClass::Heavy => "heavy",
        }
    }

    /// Samples a class with the paper's shares.
    pub fn sample(rng: &mut SmallRng) -> UserClass {
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < calibration::CLASS_OCCASIONAL {
            UserClass::Occasional
        } else if u < calibration::CLASS_OCCASIONAL + calibration::CLASS_UPLOAD_ONLY {
            UserClass::UploadOnly
        } else if u < calibration::CLASS_OCCASIONAL
            + calibration::CLASS_UPLOAD_ONLY
            + calibration::CLASS_DOWNLOAD_ONLY
        {
            UserClass::DownloadOnly
        } else {
            UserClass::Heavy
        }
    }

    /// Whether sessions of this class may carry data-management work.
    pub fn does_uploads(self) -> bool {
        matches!(self, UserClass::UploadOnly | UserClass::Heavy)
    }

    pub fn does_downloads(self) -> bool {
        matches!(self, UserClass::DownloadOnly | UserClass::Heavy)
    }
}

/// A user's static profile.
#[derive(Debug, Clone)]
pub struct UserProfile {
    pub class: UserClass,
    /// Relative activity weight (mean 1 over the population, heavy tail).
    pub weight: f64,
    /// Mean sessions per day.
    pub sessions_per_day: f64,
    /// Has at least one user-defined folder (58% of users, §6.3).
    pub has_udf: bool,
    /// Participates in sharing (1.8% of users, §6.3).
    pub shares: bool,
}

/// Samples the activity weight: a Pareto tail calibrated empirically so a
/// 10^5–10^6-user population shows Gini ≈ 0.85–0.9 and a top-1% share of
/// ≈ 0.65 (Fig. 7(c) reports 0.894/0.897 and 65.6%). α = 1.02 with a
/// 10^5 clamp lands at Gini ≈ 0.85, top-1% ≈ 0.66 on 2×10^5 samples.
pub fn sample_activity_weight(rng: &mut SmallRng) -> f64 {
    const ALPHA: f64 = 1.02;
    // theta chosen for mean ≈ alpha*theta/(alpha-1) = 1 → theta = (α-1)/α.
    const THETA: f64 = (ALPHA - 1.0) / ALPHA;
    // Clamp the extreme tail so one user cannot be the whole trace.
    rngx::sample_pareto(rng, ALPHA, THETA).min(100_000.0)
}

/// Builds a user profile.
pub fn sample_profile(rng: &mut SmallRng) -> UserProfile {
    let mut class = UserClass::sample(rng);
    let weight = sample_activity_weight(rng);
    // Traffic whales are, by construction, heavy users: an "occasional"
    // label on a top-tail weight would contradict both definitions.
    if weight > 2.0 && class == UserClass::Occasional {
        let u: f64 = rng.gen_range(0.0..1.0);
        class = if u < 0.6 {
            UserClass::Heavy
        } else if u < 0.85 {
            UserClass::UploadOnly
        } else {
            UserClass::DownloadOnly
        };
    }
    // Table 3: ≈ 42.5M sessions / 1.29M users / 30 days ≈ 1.1/day on
    // average. Heavier users connect more (more devices, more uptime).
    let sessions_per_day = (0.7 + 0.5 * weight.min(16.0)).min(9.0);
    UserProfile {
        class,
        weight,
        sessions_per_day,
        has_udf: rng.gen_range(0.0..1.0) < calibration::USERS_WITH_UDF,
        shares: rng.gen_range(0.0..1.0) < calibration::USERS_WITH_SHARE,
    }
}

/// Gini coefficient of a weight vector (used here to verify calibration;
/// the analytics crate has the production implementation).
pub fn gini(weights: &[f64]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let mut sorted = weights.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, w)| (i as f64 + 1.0) * w)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_shares_match_paper() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            match UserClass::sample(&mut rng) {
                UserClass::Occasional => counts[0] += 1,
                UserClass::UploadOnly => counts[1] += 1,
                UserClass::DownloadOnly => counts[2] += 1,
                UserClass::Heavy => counts[3] += 1,
            }
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.8582).abs() < 0.01);
        assert!((f(counts[1]) - 0.0722).abs() < 0.005);
        assert!((f(counts[2]) - 0.0234).abs() < 0.004);
        assert!((f(counts[3]) - 0.0462).abs() < 0.005);
    }

    #[test]
    fn activity_weights_reproduce_paper_inequality() {
        let mut rng = SmallRng::seed_from_u64(2);
        let weights: Vec<f64> = (0..200_000)
            .map(|_| sample_activity_weight(&mut rng))
            .collect();
        let g = gini(&weights);
        assert!((0.75..=0.96).contains(&g), "gini {g}");
        // Top 1% share.
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top1: f64 = sorted[..sorted.len() / 100].iter().sum();
        let share = top1 / sorted.iter().sum::<f64>();
        assert!((0.45..=0.80).contains(&share), "top-1% share {share}");
    }

    #[test]
    fn profiles_have_sane_rates() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut udf = 0;
        let mut share = 0;
        let n = 50_000;
        for _ in 0..n {
            let p = sample_profile(&mut rng);
            assert!(p.sessions_per_day >= 0.7 && p.sessions_per_day <= 9.0);
            udf += p.has_udf as u32;
            share += p.shares as u32;
        }
        assert!(((udf as f64 / n as f64) - 0.58).abs() < 0.01);
        assert!(((share as f64 / n as f64) - 0.018).abs() < 0.004);
    }

    #[test]
    fn gini_sanity() {
        assert!(gini(&[]).abs() < 1e-12);
        assert!(gini(&[5.0, 5.0, 5.0]).abs() < 1e-9, "equal → 0");
        let extreme = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(extreme > 0.7, "one-owner → high, got {extreme}");
    }
}
