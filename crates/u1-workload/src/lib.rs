//! Calibrated synthetic workload for the U1 back-end.
//!
//! The original dataset (758GB, 1.29M users, 30 days) is not available, so
//! this crate synthesizes a client population whose behavior matches every
//! distribution §5–§7 of the paper publishes. Calibration targets are
//! centralized in [`calibration`] with section references; the other
//! modules turn them into generators:
//!
//! * [`files`] — extensions, per-category sizes, content popularity (dedup),
//!   planned node lifetimes,
//! * [`users`] — the four activity classes and the heavy-tailed per-user
//!   activity skew behind the Gini ≈ 0.89 Lorenz curve,
//! * [`markov`] — the Fig. 8 operation-transition chain,
//! * [`sessions`] — session arrivals (diurnal, weekday-aware), durations,
//!   and the active/cold split,
//! * [`attack`] — the three DDoS episodes of §5.4,
//! * [`driver`] — the discrete-event loop that replays all of the above
//!   against a [`u1_server::Backend`] under a virtual clock, producing a
//!   month of trace in seconds,
//! * [`fleet`] — a closed-loop client fleet generic over the
//!   [`u1_client::Transport`], used to prove the wire tier serves the
//!   exact same byte stream as the in-process path.

pub mod attack;
pub mod calibration;
pub mod driver;
pub mod files;
pub mod fleet;
pub mod markov;
pub mod sessions;
pub mod users;

pub use driver::{Driver, DriverReport, WorkloadConfig};
pub use fleet::{run_concurrent, run_lockstep, FleetConfig, FleetReport, ServiceSample};
pub use users::UserClass;
