//! The one-line-per-record CSV format.
//!
//! Lines are comma-separated with no quoting; the only free-text field (file
//! extension) is sanitized to `[a-z0-9]` at emission. A line starts with the
//! timestamp in microseconds and the request type, mirroring the structure
//! the paper describes (strictly sequential, timestamped lines per process).
//!
//! Example lines:
//!
//! ```text
//! 8640000000,session,open,s17,u4
//! 8640012345,storage_done,upload,s17,u4,v0,n99,file,1048576,3f786850e387550fdab836ed7e6dc881de23001b,jpg,ok,15000
//! 8640012350,rpc,dal.make_content,shard3,u4,2100
//! 8640000001,auth,u4,ok
//! ```
//!
//! Fault runs append optional trailing fields — `a=N` (attempt number when
//! a retry loop re-issued the request) and `ec=<class>` (the injected
//! [`u1_core::ErrorClass`]):
//!
//! ```text
//! 8640012350,rpc,dal.get_node,shard3,u4,2000000,a=2,ec=timeout
//! ```
//!
//! Both are omitted at their defaults (first attempt, no error), so the
//! lines of a fault-free run are byte-identical to the pre-fault format.

use crate::event::{Payload, SessionEvent, TraceRecord};
use std::fmt;
use u1_core::{
    ApiOpKind, ContentHash, ErrorClass, MachineId, NodeId, NodeKind, ProcessId, RpcKind, SessionId,
    ShardId, SimTime, UserId, VolumeId,
};

/// Writes a `u64` as decimal digits without going through `core::fmt`'s
/// generic machinery: digits are produced backwards into a stack buffer and
/// emitted as one `write_str`. This is the innermost loop of trace
/// emission — every line carries at least a timestamp and a handful of ids.
fn write_u64<W: fmt::Write>(out: &mut W, mut v: u64) -> fmt::Result {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Only ASCII digits were written, so the slice is valid UTF-8.
    out.write_str(std::str::from_utf8(&buf[i..]).unwrap_or("0"))
}

/// Writes a prefixed id like `s17` / `u4` / `v0` / `n99`.
fn write_id<W: fmt::Write>(out: &mut W, prefix: &str, raw: u64) -> fmt::Result {
    out.write_str(prefix)?;
    write_u64(out, raw)
}

/// Writes the extension field. [`u1_core::Ext`] is sanitized at
/// construction with exactly the rules this serializer used to apply per
/// line (`[a-z0-9]`, max 16 chars), so emission is a plain copy; `-` when
/// nothing survived sanitization.
fn write_ext<W: fmt::Write>(out: &mut W, ext: &u1_core::Ext) -> fmt::Result {
    if ext.is_empty() {
        out.write_char('-')
    } else {
        out.write_str(ext.as_str())
    }
}

/// Serializes a record as one CSV line (no trailing newline) into any
/// [`fmt::Write`] — typically an amortized per-thread `String` buffer. This
/// is the allocation-free core; [`to_line`] is a thin compatibility wrapper.
pub fn write_line<W: fmt::Write>(rec: &TraceRecord, out: &mut W) -> fmt::Result {
    write_u64(out, rec.t.as_micros())?;
    write_payload(rec, out)?;
    // Fault tags ride as optional trailing fields so fault-free lines stay
    // byte-identical to the pre-fault format.
    if rec.attempt > 1 {
        out.write_str(",a=")?;
        write_u64(out, rec.attempt as u64)?;
    }
    if let Some(class) = rec.error_class {
        out.write_str(",ec=")?;
        out.write_str(class.label())?;
    }
    Ok(())
}

/// [`write_line`] plus the synthetic origin/sequence stamps as trailing
/// `o=`/`q=` fields (after the fault tags). The paper's logfile schema has
/// no such columns — plain [`write_line`] stays byte-identical to it — but
/// a *stamped* trace directory can be read back into the exact canonical
/// `(t, origin, seq)` order, which is what lets the stream-to-disk pipeline
/// reproduce the in-memory golden trace hash bit for bit.
pub fn write_line_stamped<W: fmt::Write>(rec: &TraceRecord, out: &mut W) -> fmt::Result {
    write_line(rec, out)?;
    out.write_str(",o=")?;
    write_u64(out, rec.origin as u64)?;
    out.write_str(",q=")?;
    write_u64(out, rec.seq)
}

fn write_payload<W: fmt::Write>(rec: &TraceRecord, out: &mut W) -> fmt::Result {
    match &rec.payload {
        Payload::Session {
            event,
            session,
            user,
        } => {
            out.write_str(match event {
                SessionEvent::Open => ",session,open,",
                SessionEvent::Close => ",session,close,",
            })?;
            write_id(out, "s", session.raw())?;
            write_id(out, ",u", user.raw())
        }
        Payload::Storage {
            op,
            session,
            user,
            volume,
            node,
            kind,
            size,
            hash,
            ext,
            success,
            duration_us,
        } => {
            out.write_str(",storage_done,")?;
            out.write_str(op.label())?;
            write_id(out, ",s", session.raw())?;
            write_id(out, ",u", user.raw())?;
            write_id(out, ",v", volume.raw())?;
            match node {
                Some(n) => write_id(out, ",n", n.raw())?,
                None => out.write_str(",-")?,
            }
            out.write_str(match kind {
                Some(NodeKind::File) => ",file,",
                Some(NodeKind::Directory) => ",dir,",
                None => ",-,",
            })?;
            write_u64(out, *size)?;
            out.write_char(',')?;
            match hash {
                Some(h) => h.write_hex(out)?,
                None => out.write_char('-')?,
            }
            out.write_char(',')?;
            write_ext(out, ext)?;
            out.write_str(if *success { ",ok," } else { ",err," })?;
            write_u64(out, *duration_us)
        }
        Payload::Rpc {
            rpc,
            shard,
            user,
            service_us,
        } => {
            out.write_str(",rpc,")?;
            out.write_str(rpc.dal_name())?;
            write_id(out, ",shard", shard.raw() as u64)?;
            write_id(out, ",u", user.raw())?;
            out.write_char(',')?;
            write_u64(out, *service_us)
        }
        Payload::Auth { user, success } => {
            write_id(out, ",auth,u", user.raw())?;
            out.write_str(if *success { ",ok" } else { ",fail" })
        }
    }
}

/// Serializes a record to one CSV line (no trailing newline). Compatibility
/// wrapper over [`write_line`]; allocates the returned `String` and nothing
/// else.
pub fn to_line(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(128);
    let _ = write_line(rec, &mut s);
    s
}

/// Error describing why a line failed to parse. The reader counts these
/// (the paper tolerated ~1% unparseable lines) rather than aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    pub reason: &'static str,
}

fn err<T>(reason: &'static str) -> Result<T, LineError> {
    Err(LineError { reason })
}

fn parse_u64(s: &str, reason: &'static str) -> Result<u64, LineError> {
    s.parse::<u64>().map_err(|_| LineError { reason })
}

fn parse_prefixed(s: &str, prefix: char, reason: &'static str) -> Result<u64, LineError> {
    let rest = s.strip_prefix(prefix).ok_or(LineError { reason })?;
    parse_u64(rest, reason)
}

/// Parses one CSV line into the payload + timestamp. Machine/process come
/// from the logfile name, not the line, exactly as in the original format.
pub fn from_line(
    line: &str,
    machine: MachineId,
    process: ProcessId,
) -> Result<TraceRecord, LineError> {
    let mut fields = line.trim_end().split(',');
    let t = SimTime::from_micros(parse_u64(
        fields.next().ok_or(LineError { reason: "empty" })?,
        "bad timestamp",
    )?);
    let ty = fields.next().ok_or(LineError { reason: "no type" })?;
    let payload = match ty {
        "session" => {
            let ev = match fields.next() {
                Some("open") => SessionEvent::Open,
                Some("close") => SessionEvent::Close,
                _ => return err("bad session event"),
            };
            let session = SessionId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                's',
                "bad session id",
            )?);
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            Payload::Session {
                event: ev,
                session,
                user,
            }
        }
        "storage_done" => {
            let op = ApiOpKind::from_label(fields.next().unwrap_or(""))
                .ok_or(LineError { reason: "bad op" })?;
            let session = SessionId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                's',
                "bad session id",
            )?);
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            let volume = VolumeId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'v',
                "bad volume",
            )?);
            let node = match fields.next().unwrap_or("") {
                "-" => None,
                s => Some(NodeId::new(parse_prefixed(s, 'n', "bad node")?)),
            };
            let kind = match fields.next().unwrap_or("") {
                "file" => Some(NodeKind::File),
                "dir" => Some(NodeKind::Directory),
                "-" => None,
                _ => return err("bad node kind"),
            };
            let size = parse_u64(fields.next().unwrap_or(""), "bad size")?;
            let hash = match fields.next().unwrap_or("") {
                "-" => None,
                s => Some(ContentHash::from_hex(s).ok_or(LineError { reason: "bad hash" })?),
            };
            let ext = match fields.next().unwrap_or("") {
                "-" => u1_core::Ext::EMPTY,
                s => u1_core::Ext::new(s),
            };
            let success = match fields.next().unwrap_or("") {
                "ok" => true,
                "err" => false,
                _ => return err("bad status"),
            };
            let duration_us = parse_u64(fields.next().unwrap_or(""), "bad duration")?;
            Payload::Storage {
                op,
                session,
                user,
                volume,
                node,
                kind,
                size,
                hash,
                ext,
                success,
                duration_us,
            }
        }
        "rpc" => {
            let rpc = RpcKind::from_dal_name(fields.next().unwrap_or(""))
                .ok_or(LineError { reason: "bad rpc" })?;
            let shard_field = fields.next().unwrap_or("");
            let shard_raw = shard_field.strip_prefix("shard").ok_or(LineError {
                reason: "bad shard",
            })?;
            let shard = ShardId::new(shard_raw.parse::<u16>().map_err(|_| LineError {
                reason: "bad shard",
            })?);
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            let service_us = parse_u64(fields.next().unwrap_or(""), "bad service time")?;
            Payload::Rpc {
                rpc,
                shard,
                user,
                service_us,
            }
        }
        "auth" => {
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            let success = match fields.next().unwrap_or("") {
                "ok" => true,
                "fail" => false,
                _ => return err("bad auth status"),
            };
            Payload::Auth { user, success }
        }
        _ => return err("unknown type"),
    };
    let mut rec = TraceRecord::new(t, machine, process, payload);
    // A parsed line carries its own fault tags (or none); never inherit the
    // thread-local tags of whoever is doing the parsing.
    rec.attempt = 1;
    rec.error_class = None;
    for field in fields {
        if let Some(v) = field.strip_prefix("a=") {
            rec.attempt = v.parse::<u32>().map_err(|_| LineError {
                reason: "bad attempt",
            })?;
        } else if let Some(v) = field.strip_prefix("ec=") {
            rec.error_class = Some(ErrorClass::from_label(v).ok_or(LineError {
                reason: "bad error class",
            })?);
        } else if let Some(v) = field.strip_prefix("o=") {
            // Origin/seq stamps written by `write_line_stamped`; plain
            // traces lack them and keep whatever `TraceRecord::new` stamped.
            rec.origin = v.parse::<u32>().map_err(|_| LineError {
                reason: "bad origin",
            })?;
        } else if let Some(v) = field.strip_prefix("q=") {
            rec.seq = v
                .parse::<u64>()
                .map_err(|_| LineError { reason: "bad seq" })?;
        }
        // Other trailing fields stay tolerated, as before.
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(payload: Payload) -> TraceRecord {
        TraceRecord::new(
            SimTime::from_secs(5),
            MachineId::new(2),
            ProcessId::new(9),
            payload,
        )
    }

    fn round_trip(rec: TraceRecord) {
        let line = to_line(&rec);
        let back = from_line(&line, rec.machine, rec.process).expect("parse");
        assert_eq!(back, rec, "line was: {line}");
    }

    #[test]
    fn session_round_trip() {
        round_trip(mk(Payload::Session {
            event: SessionEvent::Open,
            session: SessionId::new(17),
            user: UserId::new(4),
        }));
        round_trip(mk(Payload::Session {
            event: SessionEvent::Close,
            session: SessionId::new(17),
            user: UserId::new(4),
        }));
    }

    #[test]
    fn storage_round_trip_full_and_minimal() {
        round_trip(mk(Payload::Storage {
            op: ApiOpKind::Upload,
            session: SessionId::new(17),
            user: UserId::new(4),
            volume: VolumeId::new(0),
            node: Some(NodeId::new(99)),
            kind: Some(NodeKind::File),
            size: 1_048_576,
            hash: Some(ContentHash::from_content_id(1)),
            ext: "jpg".into(),
            success: true,
            duration_us: 15_000,
        }));
        round_trip(mk(Payload::Storage {
            op: ApiOpKind::ListVolumes,
            session: SessionId::new(1),
            user: UserId::new(2),
            volume: VolumeId::new(3),
            node: None,
            kind: None,
            size: 0,
            hash: None,
            ext: u1_core::Ext::EMPTY,
            success: false,
            duration_us: 10,
        }));
    }

    #[test]
    fn rpc_and_auth_round_trip() {
        round_trip(mk(Payload::Rpc {
            rpc: RpcKind::MakeContent,
            shard: ShardId::new(3),
            user: UserId::new(4),
            service_us: 2_100,
        }));
        round_trip(mk(Payload::Auth {
            user: UserId::new(4),
            success: false,
        }));
    }

    #[test]
    fn stamped_line_round_trips_origin_and_seq() {
        let mut rec = mk(Payload::Auth {
            user: UserId::new(4),
            success: true,
        });
        rec.origin = 7;
        rec.seq = 123_456_789;
        let mut line = String::new();
        write_line_stamped(&rec, &mut line).unwrap();
        assert!(line.ends_with(",o=7,q=123456789"), "line was: {line}");
        let back = from_line(&line, rec.machine, rec.process).expect("parse");
        assert_eq!(back, rec, "line was: {line}");
    }

    #[test]
    fn stamped_line_is_plain_line_plus_stamps() {
        let mut rec = mk(Payload::Rpc {
            rpc: RpcKind::GetNode,
            shard: ShardId::new(1),
            user: UserId::new(2),
            service_us: 77,
        });
        rec.attempt = 3;
        rec.error_class = Some(ErrorClass::Timeout);
        let plain = to_line(&rec);
        let mut stamped = String::new();
        write_line_stamped(&rec, &mut stamped).unwrap();
        // Stamps go strictly after the fault tags; stripping them recovers
        // the paper-schema line byte for byte.
        assert_eq!(stamped, format!("{plain},o={},q={}", rec.origin, rec.seq));
        // And a plain (unstamped) line parses with origin/seq untouched by
        // the stamp fields.
        let back = from_line(&plain, rec.machine, rec.process).expect("parse");
        assert_eq!((back.origin, back.seq), (0, 0));
    }

    #[test]
    fn sanitizes_hostile_extension() {
        let rec = mk(Payload::Storage {
            op: ApiOpKind::Upload,
            session: SessionId::new(1),
            user: UserId::new(1),
            volume: VolumeId::new(0),
            node: Some(NodeId::new(1)),
            kind: Some(NodeKind::File),
            size: 1,
            hash: None,
            ext: "J,P\nG".into(),
            success: true,
            duration_us: 1,
        });
        let line = to_line(&rec);
        assert!(!line.contains('\n'));
        let back = from_line(&line, rec.machine, rec.process).unwrap();
        match back.payload {
            Payload::Storage { ext, .. } => assert_eq!(ext, "jpg"),
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn sanitize_ext_edge_cases_round_trip() {
        // (raw extension, sanitized field bytes, ext after parse-back)
        for (raw, field, parsed) in [
            ("", "-", ""),                                                 // empty
            ("≈∅", "-", ""),                                               // all non-ASCII
            ("häßlich", "hlich", "hlich"),                                 // mixed non-ASCII
            ("TARGZ", "targz", "targz"),                                   // lowercased
            ("verylongextension", "verylongextensio", "verylongextensio"), // >16 truncated
            ("a.b-c_d", "abcd", "abcd"),                                   // punctuation stripped
        ] {
            let rec = mk(Payload::Storage {
                op: ApiOpKind::Upload,
                session: SessionId::new(1),
                user: UserId::new(1),
                volume: VolumeId::new(0),
                node: Some(NodeId::new(1)),
                kind: Some(NodeKind::File),
                size: 1,
                hash: None,
                ext: raw.into(),
                success: true,
                duration_us: 1,
            });
            let line = to_line(&rec);
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields[10], field, "raw ext {raw:?}, line was: {line}");
            let back = from_line(&line, rec.machine, rec.process).expect("parse");
            match back.payload {
                Payload::Storage { ext, .. } => assert_eq!(ext, parsed, "raw ext {raw:?}"),
                _ => panic!("wrong payload"),
            }
        }
    }

    #[test]
    fn write_line_matches_to_line_for_every_variant() {
        let recs = [
            mk(Payload::Session {
                event: SessionEvent::Close,
                session: SessionId::new(u64::MAX),
                user: UserId::new(0),
            }),
            mk(Payload::Storage {
                op: ApiOpKind::Download,
                session: SessionId::new(7),
                user: UserId::new(1_294_794),
                volume: VolumeId::new(3),
                node: Some(NodeId::new(10_000_000)),
                kind: Some(NodeKind::Directory),
                size: u64::MAX,
                hash: Some(ContentHash::EMPTY),
                ext: "OgG".into(),
                success: false,
                duration_us: 0,
            }),
            mk(Payload::Rpc {
                rpc: RpcKind::GetNode,
                shard: ShardId::new(9),
                user: UserId::new(42),
                service_us: 123_456,
            }),
            mk(Payload::Auth {
                user: UserId::new(5),
                success: true,
            }),
        ];
        for rec in recs {
            let mut streamed = String::new();
            write_line(&rec, &mut streamed).expect("write_line");
            assert_eq!(streamed, to_line(&rec));
            let back = from_line(&streamed, rec.machine, rec.process).expect("parse");
            assert_eq!(back.payload.request_type(), rec.payload.request_type());
        }
    }

    #[test]
    fn fault_tags_round_trip_and_default_to_nothing() {
        let mut rec = mk(Payload::Rpc {
            rpc: RpcKind::GetNode,
            shard: ShardId::new(3),
            user: UserId::new(4),
            service_us: 2_000_000,
        });
        // Defaults serialize to the pre-fault format exactly.
        assert!(!to_line(&rec).contains("a=") && !to_line(&rec).contains("ec="));
        rec.attempt = 2;
        rec.error_class = Some(ErrorClass::Timeout);
        let line = to_line(&rec);
        assert!(line.ends_with(",a=2,ec=timeout"), "line was: {line}");
        let back = from_line(&line, rec.machine, rec.process).expect("parse");
        assert_eq!(back.attempt, 2);
        assert_eq!(back.error_class, Some(ErrorClass::Timeout));
        assert_eq!(back, rec);
        // Tags on storage lines too.
        let mut rec = mk(Payload::Storage {
            op: ApiOpKind::Upload,
            session: SessionId::new(1),
            user: UserId::new(2),
            volume: VolumeId::new(0),
            node: Some(NodeId::new(9)),
            kind: Some(NodeKind::File),
            size: 10,
            hash: None,
            ext: "txt".into(),
            success: false,
            duration_us: 77,
        });
        rec.error_class = Some(ErrorClass::ShardUnavailable);
        round_trip(rec);
        // Bad tag values are rejected, not ignored.
        assert!(from_line("5,auth,u1,ok,a=x", MachineId::new(0), ProcessId::new(0)).is_err());
        assert!(from_line(
            "5,auth,u1,ok,ec=bogus",
            MachineId::new(0),
            ProcessId::new(0)
        )
        .is_err());
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicking() {
        let m = MachineId::new(0);
        let p = ProcessId::new(0);
        for bad in [
            "",
            "notanumber,session,open,s1,u1",
            "5,session,reopen,s1,u1",
            "5,storage_done,upload,s1,u1,v0,n1,file,abc,-,-,ok,1",
            "5,rpc,dal.nonexistent,shard0,u1,5",
            "5,rpc,dal.get_node,shardx,u1,5",
            "5,auth,u1,maybe",
            "5,frobnicate,u1",
            "5,storage_done,upload,s1,u1,v0,n1,file,1,zzzz,-,ok,1",
        ] {
            assert!(from_line(bad, m, p).is_err(), "should reject: {bad:?}");
        }
    }
}
