//! The one-line-per-record CSV format.
//!
//! Lines are comma-separated with no quoting; the only free-text field (file
//! extension) is sanitized to `[a-z0-9]` at emission. A line starts with the
//! timestamp in microseconds and the request type, mirroring the structure
//! the paper describes (strictly sequential, timestamped lines per process).
//!
//! Example lines:
//!
//! ```text
//! 8640000000,session,open,s17,u4
//! 8640012345,storage_done,upload,s17,u4,v0,n99,file,1048576,3f786850e387550fdab836ed7e6dc881de23001b,jpg,ok,15000
//! 8640012350,rpc,dal.make_content,shard3,u4,2100
//! 8640000001,auth,u4,ok
//! ```

use crate::event::{Payload, SessionEvent, TraceRecord};
use u1_core::{
    ApiOpKind, ContentHash, MachineId, NodeId, NodeKind, ProcessId, RpcKind, SessionId, ShardId,
    SimTime, UserId, VolumeId,
};

/// Serializes a record to one CSV line (no trailing newline).
pub fn to_line(rec: &TraceRecord) -> String {
    let t = rec.t.as_micros();
    match &rec.payload {
        Payload::Session {
            event,
            session,
            user,
        } => {
            let ev = match event {
                SessionEvent::Open => "open",
                SessionEvent::Close => "close",
            };
            format!("{t},session,{ev},{session},{user}")
        }
        Payload::Storage {
            op,
            session,
            user,
            volume,
            node,
            kind,
            size,
            hash,
            ext,
            success,
            duration_us,
        } => {
            let node = node.map_or("-".to_string(), |n| n.to_string());
            let kind = match kind {
                Some(NodeKind::File) => "file",
                Some(NodeKind::Directory) => "dir",
                None => "-",
            };
            let hash = hash.map_or("-".to_string(), |h| h.to_hex());
            let ext = sanitize_ext(ext);
            let ok = if *success { "ok" } else { "err" };
            format!(
                "{t},storage_done,{op},{session},{user},{volume},{node},{kind},{size},{hash},{ext},{ok},{duration_us}"
            )
        }
        Payload::Rpc {
            rpc,
            shard,
            user,
            service_us,
        } => format!("{t},rpc,{},{shard},{user},{service_us}", rpc.dal_name()),
        Payload::Auth { user, success } => {
            let ok = if *success { "ok" } else { "fail" };
            format!("{t},auth,{user},{ok}")
        }
    }
}

fn sanitize_ext(ext: &str) -> String {
    let cleaned: String = ext
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .take(16)
        .collect();
    if cleaned.is_empty() {
        "-".to_string()
    } else {
        cleaned
    }
}

/// Error describing why a line failed to parse. The reader counts these
/// (the paper tolerated ~1% unparseable lines) rather than aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    pub reason: &'static str,
}

fn err<T>(reason: &'static str) -> Result<T, LineError> {
    Err(LineError { reason })
}

fn parse_u64(s: &str, reason: &'static str) -> Result<u64, LineError> {
    s.parse::<u64>().map_err(|_| LineError { reason })
}

fn parse_prefixed(s: &str, prefix: char, reason: &'static str) -> Result<u64, LineError> {
    let rest = s.strip_prefix(prefix).ok_or(LineError { reason })?;
    parse_u64(rest, reason)
}

/// Parses one CSV line into the payload + timestamp. Machine/process come
/// from the logfile name, not the line, exactly as in the original format.
pub fn from_line(
    line: &str,
    machine: MachineId,
    process: ProcessId,
) -> Result<TraceRecord, LineError> {
    let mut fields = line.trim_end().split(',');
    let t = SimTime::from_micros(parse_u64(
        fields.next().ok_or(LineError { reason: "empty" })?,
        "bad timestamp",
    )?);
    let ty = fields.next().ok_or(LineError { reason: "no type" })?;
    let payload = match ty {
        "session" => {
            let ev = match fields.next() {
                Some("open") => SessionEvent::Open,
                Some("close") => SessionEvent::Close,
                _ => return err("bad session event"),
            };
            let session = SessionId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                's',
                "bad session id",
            )?);
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            Payload::Session {
                event: ev,
                session,
                user,
            }
        }
        "storage_done" => {
            let op = ApiOpKind::from_label(fields.next().unwrap_or(""))
                .ok_or(LineError { reason: "bad op" })?;
            let session = SessionId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                's',
                "bad session id",
            )?);
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            let volume = VolumeId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'v',
                "bad volume",
            )?);
            let node = match fields.next().unwrap_or("") {
                "-" => None,
                s => Some(NodeId::new(parse_prefixed(s, 'n', "bad node")?)),
            };
            let kind = match fields.next().unwrap_or("") {
                "file" => Some(NodeKind::File),
                "dir" => Some(NodeKind::Directory),
                "-" => None,
                _ => return err("bad node kind"),
            };
            let size = parse_u64(fields.next().unwrap_or(""), "bad size")?;
            let hash = match fields.next().unwrap_or("") {
                "-" => None,
                s => Some(ContentHash::from_hex(s).ok_or(LineError { reason: "bad hash" })?),
            };
            let ext = match fields.next().unwrap_or("") {
                "-" => String::new(),
                s => s.to_string(),
            };
            let success = match fields.next().unwrap_or("") {
                "ok" => true,
                "err" => false,
                _ => return err("bad status"),
            };
            let duration_us = parse_u64(fields.next().unwrap_or(""), "bad duration")?;
            Payload::Storage {
                op,
                session,
                user,
                volume,
                node,
                kind,
                size,
                hash,
                ext,
                success,
                duration_us,
            }
        }
        "rpc" => {
            let rpc = RpcKind::from_dal_name(fields.next().unwrap_or(""))
                .ok_or(LineError { reason: "bad rpc" })?;
            let shard_field = fields.next().unwrap_or("");
            let shard_raw = shard_field.strip_prefix("shard").ok_or(LineError {
                reason: "bad shard",
            })?;
            let shard = ShardId::new(shard_raw.parse::<u16>().map_err(|_| LineError {
                reason: "bad shard",
            })?);
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            let service_us = parse_u64(fields.next().unwrap_or(""), "bad service time")?;
            Payload::Rpc {
                rpc,
                shard,
                user,
                service_us,
            }
        }
        "auth" => {
            let user = UserId::new(parse_prefixed(
                fields.next().unwrap_or(""),
                'u',
                "bad user",
            )?);
            let success = match fields.next().unwrap_or("") {
                "ok" => true,
                "fail" => false,
                _ => return err("bad auth status"),
            };
            Payload::Auth { user, success }
        }
        _ => return err("unknown type"),
    };
    Ok(TraceRecord::new(t, machine, process, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(payload: Payload) -> TraceRecord {
        TraceRecord::new(
            SimTime::from_secs(5),
            MachineId::new(2),
            ProcessId::new(9),
            payload,
        )
    }

    fn round_trip(rec: TraceRecord) {
        let line = to_line(&rec);
        let back = from_line(&line, rec.machine, rec.process).expect("parse");
        assert_eq!(back, rec, "line was: {line}");
    }

    #[test]
    fn session_round_trip() {
        round_trip(mk(Payload::Session {
            event: SessionEvent::Open,
            session: SessionId::new(17),
            user: UserId::new(4),
        }));
        round_trip(mk(Payload::Session {
            event: SessionEvent::Close,
            session: SessionId::new(17),
            user: UserId::new(4),
        }));
    }

    #[test]
    fn storage_round_trip_full_and_minimal() {
        round_trip(mk(Payload::Storage {
            op: ApiOpKind::Upload,
            session: SessionId::new(17),
            user: UserId::new(4),
            volume: VolumeId::new(0),
            node: Some(NodeId::new(99)),
            kind: Some(NodeKind::File),
            size: 1_048_576,
            hash: Some(ContentHash::from_content_id(1)),
            ext: "jpg".into(),
            success: true,
            duration_us: 15_000,
        }));
        round_trip(mk(Payload::Storage {
            op: ApiOpKind::ListVolumes,
            session: SessionId::new(1),
            user: UserId::new(2),
            volume: VolumeId::new(3),
            node: None,
            kind: None,
            size: 0,
            hash: None,
            ext: String::new(),
            success: false,
            duration_us: 10,
        }));
    }

    #[test]
    fn rpc_and_auth_round_trip() {
        round_trip(mk(Payload::Rpc {
            rpc: RpcKind::MakeContent,
            shard: ShardId::new(3),
            user: UserId::new(4),
            service_us: 2_100,
        }));
        round_trip(mk(Payload::Auth {
            user: UserId::new(4),
            success: false,
        }));
    }

    #[test]
    fn sanitizes_hostile_extension() {
        let rec = mk(Payload::Storage {
            op: ApiOpKind::Upload,
            session: SessionId::new(1),
            user: UserId::new(1),
            volume: VolumeId::new(0),
            node: Some(NodeId::new(1)),
            kind: Some(NodeKind::File),
            size: 1,
            hash: None,
            ext: "J,P\nG".into(),
            success: true,
            duration_us: 1,
        });
        let line = to_line(&rec);
        assert!(!line.contains('\n'));
        let back = from_line(&line, rec.machine, rec.process).unwrap();
        match back.payload {
            Payload::Storage { ext, .. } => assert_eq!(ext, "jpg"),
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicking() {
        let m = MachineId::new(0);
        let p = ProcessId::new(0);
        for bad in [
            "",
            "notanumber,session,open,s1,u1",
            "5,session,reopen,s1,u1",
            "5,storage_done,upload,s1,u1,v0,n1,file,abc,-,-,ok,1",
            "5,rpc,dal.nonexistent,shard0,u1,5",
            "5,rpc,dal.get_node,shardx,u1,5",
            "5,auth,u1,maybe",
            "5,frobnicate,u1",
            "5,storage_done,upload,s1,u1,v0,n1,file,1,zzzz,-,ok,1",
        ] {
            assert!(from_line(bad, m, p).is_err(), "should reject: {bad:?}");
        }
    }
}
