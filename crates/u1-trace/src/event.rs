//! The typed trace event model.

use serde::{Deserialize, Serialize};
use u1_core::{
    ApiOpKind, ContentHash, ErrorClass, Ext, MachineId, NodeId, NodeKind, ProcessId, RpcKind,
    SessionId, ShardId, SimTime, UserId, VolumeId,
};

/// Session lifecycle events (request type `session` in the original trace).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SessionEvent {
    Open,
    Close,
}

/// The payload of one trace line.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Payload {
    /// Session opened/closed on an API server process.
    Session {
        event: SessionEvent,
        session: SessionId,
        user: UserId,
    },
    /// A completed API operation (request type `storage_done`): the unit the
    /// paper's storage-workload and user-behavior analyses consume.
    Storage {
        op: ApiOpKind,
        session: SessionId,
        user: UserId,
        volume: VolumeId,
        node: Option<NodeId>,
        kind: Option<NodeKind>,
        /// Transferred bytes for uploads/downloads, 0 for metadata ops.
        size: u64,
        /// Content hash for transfers (provided by the client before upload,
        /// §3.3); `None` for metadata operations and directories.
        hash: Option<ContentHash>,
        /// File extension in the serializer's canonical sanitized form
        /// (lowercased, no dot); empty when n/a. `Copy`, 17 bytes — the
        /// record carries no heap string.
        ext: Ext,
        success: bool,
        /// Server-side processing time for the request, microseconds.
        duration_us: u64,
    },
    /// An RPC against the metadata store (request type `rpc`), with its
    /// service time — the raw material for Figs. 12–14.
    Rpc {
        rpc: RpcKind,
        shard: ShardId,
        user: UserId,
        service_us: u64,
    },
    /// A request from an API server to the Canonical authentication service
    /// (§3.4.1, Fig. 15). 2.76% of these failed in the original trace.
    Auth { user: UserId, success: bool },
}

impl Payload {
    /// The request type tag used in trace lines (mirrors §4's vocabulary).
    pub fn request_type(&self) -> &'static str {
        match self {
            Payload::Session { .. } => "session",
            Payload::Storage { .. } => "storage_done",
            Payload::Rpc { .. } => "rpc",
            Payload::Auth { .. } => "auth",
        }
    }

    /// The user this record concerns.
    pub fn user(&self) -> UserId {
        match self {
            Payload::Session { user, .. }
            | Payload::Storage { user, .. }
            | Payload::Rpc { user, .. }
            | Payload::Auth { user, .. } => *user,
        }
    }
}

/// One line of the trace: where it was logged, when, and what happened.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Timestamp. Timestamps are NTP-synchronized-but-not-dependable across
    /// servers, exactly as §4 warns; under the parallel driver even one
    /// process's stream interleaves records from concurrently-simulated
    /// partitions, so `(t, origin, seq)` — not `t` alone — is the canonical
    /// order (see [`crate::MemorySink::take_sorted`]).
    pub t: SimTime,
    /// Physical machine that hosted the process.
    pub machine: MachineId,
    /// Server process number, unique within the machine.
    pub process: ProcessId,
    /// Simulation partition that produced this record (0 when the producer
    /// ran without a [`u1_core::PartitionCtx`]). Synthetic — not part of the
    /// paper's logfile schema, so CSV round trips reset it to 0.
    pub origin: u32,
    /// Monotone per-origin sequence number; ties with `origin` break
    /// equal-timestamp records deterministically regardless of worker count.
    pub seq: u64,
    /// Which attempt of a retried operation produced this record (1 = first
    /// try). Filled from the thread-local tag set by retry loops (see
    /// [`u1_core::fault`]); always 1 in fault-free runs, and serialized only
    /// when > 1 so fault-free traces stay byte-identical.
    pub attempt: u32,
    /// Error classification when this record was produced under an injected
    /// fault; `None` (and unserialized) otherwise.
    pub error_class: Option<ErrorClass>,
    pub payload: Payload,
}

impl TraceRecord {
    pub fn new(t: SimTime, machine: MachineId, process: ProcessId, payload: Payload) -> Self {
        let (origin, seq) = u1_core::partition::next_trace_stamp().unwrap_or((0, 0));
        Self {
            t,
            machine,
            process,
            origin,
            seq,
            attempt: u1_core::fault::current_attempt(),
            error_class: u1_core::fault::current_error_class(),
            payload,
        }
    }

    /// Convenience accessor: true if this record is a completed data
    /// transfer (upload or download).
    pub fn is_transfer(&self) -> bool {
        matches!(
            &self.payload,
            Payload::Storage { op, success: true, .. } if op.is_transfer()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage(op: ApiOpKind, ok: bool) -> Payload {
        Payload::Storage {
            op,
            session: SessionId::new(1),
            user: UserId::new(2),
            volume: VolumeId::new(0),
            node: Some(NodeId::new(3)),
            kind: Some(NodeKind::File),
            size: 100,
            hash: None,
            ext: "txt".into(),
            success: ok,
            duration_us: 500,
        }
    }

    #[test]
    fn request_types_match_paper_vocabulary() {
        assert_eq!(
            Payload::Session {
                event: SessionEvent::Open,
                session: SessionId::new(1),
                user: UserId::new(1)
            }
            .request_type(),
            "session"
        );
        assert_eq!(
            storage(ApiOpKind::Upload, true).request_type(),
            "storage_done"
        );
        assert_eq!(
            Payload::Rpc {
                rpc: RpcKind::GetNode,
                shard: ShardId::new(0),
                user: UserId::new(1),
                service_us: 10
            }
            .request_type(),
            "rpc"
        );
        assert_eq!(
            Payload::Auth {
                user: UserId::new(1),
                success: true
            }
            .request_type(),
            "auth"
        );
    }

    #[test]
    fn is_transfer_requires_success_and_transfer_op() {
        let rec = |p| TraceRecord::new(SimTime::ZERO, MachineId::new(0), ProcessId::new(0), p);
        assert!(rec(storage(ApiOpKind::Upload, true)).is_transfer());
        assert!(rec(storage(ApiOpKind::Download, true)).is_transfer());
        assert!(!rec(storage(ApiOpKind::Upload, false)).is_transfer());
        assert!(!rec(storage(ApiOpKind::Unlink, true)).is_transfer());
    }
}
