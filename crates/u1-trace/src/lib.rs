//! Trace collection for the U1 back-end reproduction (§4 of the paper).
//!
//! The original measurement captured one logfile per API/RPC server process
//! per day, named like `production-whitecurrant-23-20140128`, each strictly
//! sequential and timestamped, with request types `storage`/`storage_done`,
//! `rpc` and `session`. About 1% of lines could not be parsed.
//!
//! This crate reproduces that pipeline:
//!
//! * [`TraceRecord`] / [`Payload`] — the typed event model,
//! * [`csvline`] — the line format (one CSV line per record),
//! * [`sink`] — where running servers emit records ([`MemorySink`] for
//!   in-process analysis, [`DirSink`] for paper-style logfile directories),
//! * [`logfile`] — logfile naming, per-process day rotation, directory
//!   reading with malformed-line tolerance, and timestamp merge,
//! * [`anonymize`] — the keyed id-scrambling pass Canonical applied before
//!   releasing the dataset.

pub mod anonymize;
pub mod csvline;
pub mod event;
pub mod logfile;
pub mod sink;

pub use anonymize::Anonymizer;
pub use event::{Payload, SessionEvent, TraceRecord};
pub use logfile::{
    logfile_name, parse_logfile_name, DayChunk, DayChunks, LogDirReader, ParseStats,
};
pub use sink::{BufferedSink, DirSink, MemorySink, NullSink, TraceSink};
