//! Logfile naming, directory reading and timestamp merging.
//!
//! Mirrors §4 of the paper: one logfile per server process per day, named
//! `production-<machine>-<process>-<date>`; each file is internally
//! sequential; a merged, timestamp-sorted view is what the analyses consume;
//! ~1% of lines may fail to parse and are skipped (and counted).
//!
//! The read path is allocation-light: lines are read into one reused buffer
//! per task (no per-line `String`), each file yields its own [`ParseStats`]
//! so the parallel reader can sum them, and [`LogDirReader::read_all_parallel`]
//! splits files into *byte ranges aligned to line boundaries* (pread-style:
//! each task seeks into its own handle — one big file no longer serializes
//! the whole read on one task) and merges per-range output in `(file, range)`
//! order — producing output byte-identical to the serial
//! [`LogDirReader::read_all`].
//!
//! Range-split convention: a range `[start, end)` owns every line whose
//! *first byte* lies in the range. A task with `start > 0` seeks to
//! `start - 1` and discards through the first `\n` (that line's first byte
//! is owned by an earlier range), and the last line of a range may extend
//! past `end` (later ranges skip it by the same rule). Every line is
//! therefore parsed exactly once no matter where the split points land —
//! mid-line, on a boundary, or past EOF.

use crate::csvline;
use crate::event::TraceRecord;
use std::fs;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use u1_core::timing::{saturating_nanos, Phase, PhaseTimers};
use u1_core::{MachineId, ProcessId};

/// Floor on planned range size: below this, per-task overhead (open, seek,
/// partial-line skip) beats the parallelism. Small files still parse as a
/// single range each.
const MIN_RANGE_BYTES: u64 = 256 * 1024;

/// Builds the logfile name for a (machine, process, day) triple, e.g.
/// `production-whitecurrant-23-day05.csv` — same structure as the paper's
/// `production-whitecurrant-23-20140128` with a trace-relative day index
/// instead of a calendar date.
pub fn logfile_name(machine: MachineId, process: ProcessId, day: u64) -> String {
    format!(
        "production-{}-{}-day{:02}.csv",
        machine.name(),
        process.raw(),
        day
    )
}

/// Parses a logfile name back into its (machine, process, day) components.
/// Returns `None` for files that are not trace logfiles.
pub fn parse_logfile_name(name: &str) -> Option<(MachineId, ProcessId, u64)> {
    let rest = name.strip_prefix("production-")?.strip_suffix(".csv")?;
    // rest = <machinename>-<process>-dayNN ; machine names contain no '-'.
    let mut parts = rest.split('-');
    let machine_name = parts.next()?;
    let process: u16 = parts.next()?.parse().ok()?;
    let day: u64 = parts.next()?.strip_prefix("day")?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    // Recover the machine id from its name. Names cycle every 12 ids; we use
    // the first id with that name, which is unique for clusters of <= 12
    // machines (the original had 6).
    let machine = (0u16..12)
        .map(MachineId::new)
        .find(|m| m.name() == machine_name)?;
    Some((machine, ProcessId::new(process), day))
}

/// Counters describing a file or directory read.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ParseStats {
    pub files: usize,
    pub lines: usize,
    pub parsed: usize,
    pub malformed: usize,
    /// Files whose names did not look like trace logfiles.
    pub skipped_files: usize,
}

impl ParseStats {
    /// Fraction of lines that failed to parse (the paper reports ~1%).
    pub fn malformed_fraction(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.malformed as f64 / self.lines as f64
        }
    }

    /// Folds another file's (or directory shard's) counters into this one —
    /// the merge used by the parallel reader.
    pub fn absorb(&mut self, other: &ParseStats) {
        self.files += other.files;
        self.lines += other.lines;
        self.parsed += other.parsed;
        self.malformed += other.malformed;
        self.skipped_files += other.skipped_files;
    }
}

/// Parses a single logfile into records plus its own [`ParseStats`]
/// (`files == 1`). Lines go through one reused buffer — no per-line
/// allocation. Malformed lines are counted and skipped, never fatal.
pub fn read_logfile(
    path: &Path,
    machine: MachineId,
    process: ProcessId,
) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
    let mut stats = ParseStats {
        files: 1,
        ..ParseStats::default()
    };
    let mut records = Vec::new();
    let file = fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut buf = String::with_capacity(256);
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        // read_line keeps the terminator; strip `\n` / `\r\n` manually.
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        stats.lines += 1;
        match csvline::from_line(line, machine, process) {
            Ok(rec) => {
                stats.parsed += 1;
                records.push(rec);
            }
            Err(_) => stats.malformed += 1,
        }
    }
    Ok((records, stats))
}

/// Parses the byte range `[start, end)` of one logfile: every line whose
/// first byte lies in the range, following the module-level split
/// convention. Returns records plus stats with `files == 0` — the caller
/// attributes the file once (on the range with `start == 0`), so summing
/// range stats in order reproduces the serial per-file [`ParseStats`]
/// exactly.
pub fn read_logfile_range(
    path: &Path,
    machine: MachineId,
    process: ProcessId,
    start: u64,
    end: u64,
) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
    let mut stats = ParseStats::default();
    let mut records = Vec::new();
    let file = fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut pos = if start == 0 {
        0
    } else {
        // Seek one byte early and discard through the first newline: if
        // `start - 1` is a `\n`, this consumes exactly that byte and leaves
        // us at `start` (a line boundary); otherwise it consumes the tail
        // of a line owned by an earlier range. Byte-wise (`read_until`) so
        // a seek into the middle of a line can never split a code point.
        reader.seek(SeekFrom::Start(start - 1))?;
        let mut skip = Vec::new();
        let n = reader.read_until(b'\n', &mut skip)?;
        start - 1 + n as u64
    };
    let mut buf = String::with_capacity(256);
    // `pos` is the first byte of the next line; the line belongs to this
    // range iff `pos < end`. Reading its body may run past `end`.
    while pos < end {
        buf.clear();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            break;
        }
        pos += n as u64;
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        stats.lines += 1;
        match csvline::from_line(line, machine, process) {
            Ok(rec) => {
                stats.parsed += 1;
                records.push(rec);
            }
            Err(_) => stats.malformed += 1,
        }
    }
    Ok((records, stats))
}

/// Parses one logfile serially but through the range reader, splitting at
/// the given byte offsets (unsorted, duplicate, mid-line, or past-EOF
/// offsets are all fine). A verification helper: output must be identical
/// to [`read_logfile`] for *any* split set, which is what the differential
/// tests assert with adversarial offsets.
pub fn read_logfile_at_splits(
    path: &Path,
    machine: MachineId,
    process: ProcessId,
    splits: &[u64],
) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
    let len = fs::metadata(path)?.len();
    let mut points: Vec<u64> = splits.iter().map(|&s| s.min(len)).collect();
    points.push(0);
    points.push(len);
    points.sort_unstable();
    points.dedup();
    let mut records = Vec::new();
    let mut stats = ParseStats {
        files: 1,
        ..ParseStats::default()
    };
    for w in points.windows(2) {
        let (recs, range_stats) = read_logfile_range(path, machine, process, w[0], w[1])?;
        stats.absorb(&range_stats);
        records.extend(recs);
    }
    Ok((records, stats))
}

/// One planned parse task: the byte range `[start, end)` of file index
/// `file`. `first` marks the range that attributes the file itself (stats
/// `files` count) so per-file stats stay identical to serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RangeTask {
    file: usize,
    first: bool,
    start: u64,
    end: u64,
}

/// Plans line-boundary-agnostic byte ranges over the files: roughly
/// `threads * 4` equal-size tasks across the total byte count (for load
/// balance under the work-stealing cursor), floored at [`MIN_RANGE_BYTES`],
/// each file split independently. Empty files yield one empty range so
/// they are still counted.
fn plan_ranges(sizes: &[u64], threads: usize) -> Vec<RangeTask> {
    let total: u64 = sizes.iter().sum();
    let target_tasks = (threads * 4).max(1) as u64;
    let bytes_per_task = (total / target_tasks).max(MIN_RANGE_BYTES);
    let mut tasks = Vec::new();
    for (file, &len) in sizes.iter().enumerate() {
        let ranges = (len / bytes_per_task).max(1);
        let chunk = len.div_ceil(ranges).max(1);
        let mut start = 0u64;
        loop {
            let end = (start + chunk).min(len);
            tasks.push(RangeTask {
                file,
                first: start == 0,
                start,
                end,
            });
            if end >= len {
                break;
            }
            start = end;
        }
    }
    tasks
}

/// A parsed logfile path with the origin and day encoded in its name.
type LogfileEntry = (PathBuf, MachineId, ProcessId, u64);

/// Reads the given logfiles serially, concatenating records in file order
/// (no sort — callers pick their own ordering key).
fn read_files(files: &[LogfileEntry]) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
    let mut stats = ParseStats::default();
    let mut records = Vec::new();
    for (path, machine, process, _day) in files {
        let (recs, file_stats) = read_logfile(path, *machine, *process)?;
        stats.absorb(&file_stats);
        records.extend(recs);
    }
    Ok((records, stats))
}

/// Reads the given logfiles via planned byte ranges on a work-stealing
/// cursor (see the module docs), concatenating per-range output in
/// `(file, range)` order — byte-identical to [`read_files`] at every thread
/// count. No sort; parse thread-time is charged to [`Phase::Parse`].
fn read_files_parallel(
    files: &[LogfileEntry],
    threads: usize,
    timers: &PhaseTimers,
) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
    let threads = threads.max(1);
    if threads <= 1 || files.is_empty() {
        return read_files(files);
    }
    let sizes = files
        .iter()
        .map(|(path, _, _, _)| fs::metadata(path).map(|m| m.len()))
        .collect::<std::io::Result<Vec<u64>>>()?;
    let tasks = plan_ranges(&sizes, threads);
    type TaskResult = std::io::Result<(Vec<TraceRecord>, ParseStats)>;
    let slots: Mutex<Vec<Option<TaskResult>>> =
        Mutex::new((0..tasks.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    // Tasks are planned for the REQUESTED thread count (so granularity
    // and the range/merge logic are identical on every host), but the
    // worker pool is capped at the host's cores: extra OS threads just
    // time-slice the same cores over disjoint buffers. Pure scheduling —
    // tasks drain off the cursor, output is position-indexed.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = threads.min(tasks.len()).min(cpus.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let t0 = std::time::Instant::now();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else {
                        break;
                    };
                    let (path, machine, process, _day) = &files[task.file];
                    let result = read_logfile_range(path, *machine, *process, task.start, task.end);
                    if let Ok(mut slots) = slots.lock() {
                        slots[i] = Some(result);
                    }
                }
                timers.add(Phase::Parse, saturating_nanos(t0));
            });
        }
    });
    let mut stats = ParseStats::default();
    let slots = slots
        .into_inner()
        .map_err(|_| std::io::Error::other("parse worker panicked"))?;
    let mut records = Vec::new();
    for (task, slot) in tasks.iter().zip(slots) {
        let (recs, mut range_stats) =
            slot.ok_or_else(|| std::io::Error::other("parse task missing"))??;
        if task.first {
            range_stats.files = 1;
        }
        stats.absorb(&range_stats);
        records.extend(recs);
    }
    Ok((records, stats))
}

/// Reads a directory of trace logfiles.
pub struct LogDirReader {
    dir: PathBuf,
}

impl LogDirReader {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory's logfiles in deterministic (path-sorted) order, plus
    /// the count of skipped foreign files.
    fn logfiles(&self) -> std::io::Result<(Vec<LogfileEntry>, usize)> {
        let mut entries: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        // Deterministic file order so ties in timestamps break identically
        // across runs.
        entries.sort();
        let mut files = Vec::with_capacity(entries.len());
        let mut skipped = 0usize;
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            match parse_logfile_name(name) {
                Some((machine, process, day)) => files.push((path, machine, process, day)),
                None => skipped += 1,
            }
        }
        Ok((files, skipped))
    }

    /// Reads and merges every logfile, returning records sorted by
    /// timestamp (stable within ties) plus parse statistics. Malformed lines
    /// are counted and skipped, never fatal — matching the original
    /// pipeline's tolerance.
    pub fn read_all(&self) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
        let (files, skipped_files) = self.logfiles()?;
        let mut stats = ParseStats {
            skipped_files,
            ..ParseStats::default()
        };
        let (mut records, read_stats) = read_files(&files)?;
        stats.absorb(&read_stats);
        records.sort_by_key(|r| r.t);
        Ok((records, stats))
    }

    /// [`Self::read_all`] parallelized over line-aligned byte ranges (see
    /// the module docs for the split convention): every file is split into
    /// ~equal byte ranges, tasks are claimed off an atomic cursor, and each
    /// task seeks its own file handle — so one large file parallelizes
    /// instead of serializing on a single per-file task. Per-range output
    /// is concatenated in `(file, range)` order — the exact byte order of
    /// the serial reader — and stable-sorted by timestamp, so records *and*
    /// per-file stats are identical to `read_all` at every thread count.
    pub fn read_all_parallel(
        &self,
        threads: usize,
    ) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
        self.read_all_parallel_timed(threads, &PhaseTimers::new())
    }

    /// [`Self::read_all_parallel`], charging parse thread-time to
    /// [`Phase::Parse`] and the final merge sort to [`Phase::Sort`] on the
    /// given timer bank (how the bench JSONs get their per-phase blocks).
    pub fn read_all_parallel_timed(
        &self,
        threads: usize,
        timers: &PhaseTimers,
    ) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
        let (files, skipped_files) = self.logfiles()?;
        let threads = threads.max(1);
        if threads <= 1 || files.is_empty() {
            return self.read_all();
        }
        let mut stats = ParseStats {
            skipped_files,
            ..ParseStats::default()
        };
        let (mut records, read_stats) = read_files_parallel(&files, threads, timers)?;
        stats.absorb(&read_stats);
        let t_sort = std::time::Instant::now();
        records.sort_by_key(|r| r.t);
        timers.add(Phase::Sort, saturating_nanos(t_sort));
        Ok((records, stats))
    }

    /// Groups the directory's logfiles by the day index in their names and
    /// returns a bounded-memory iterator over them, ascending. This is the
    /// off-disk scale path: [`DirSink`](crate::DirSink) picks each record's
    /// file by `t.day_index()`, so the day files exactly partition the trace
    /// by time, and one day (~1/30 of a month) is the largest buffer the
    /// reader ever holds.
    ///
    /// Each chunk is sorted by `(t, origin, seq)`. On a *stamped* directory
    /// (see [`DirSink::create_stamped`](crate::DirSink::create_stamped))
    /// the concatenation of all chunks is therefore the exact canonical
    /// order of `MemorySink::take_sorted` — what lets off-disk analytics
    /// reproduce the in-memory results bit for bit.
    pub fn day_chunks(&self, threads: usize) -> std::io::Result<DayChunks> {
        let (files, skipped_files) = self.logfiles()?;
        let mut days: Vec<(u64, Vec<LogfileEntry>)> = Vec::new();
        // `logfiles()` is path-sorted, not day-sorted (day is the last name
        // component), so group via a sort by day; the per-day file order
        // stays path-sorted because the sort is stable.
        let mut sorted = files;
        sorted.sort_by_key(|(_, _, _, day)| *day);
        for entry in sorted {
            match days.last_mut() {
                Some((day, group)) if *day == entry.3 => group.push(entry),
                _ => days.push((entry.3, vec![entry])),
            }
        }
        Ok(DayChunks {
            days,
            threads: threads.max(1),
            next: 0,
            skipped_files,
        })
    }
}

/// One day of a trace directory, parsed and canonically sorted.
pub struct DayChunk {
    /// The day index shared by every record's `t.day_index()`.
    pub day: u64,
    /// The day's records, sorted by `(t, origin, seq)`.
    pub records: Vec<TraceRecord>,
    /// Parse counters for this day's files only.
    pub stats: ParseStats,
}

/// Iterator over a trace directory's days in ascending order; see
/// [`LogDirReader::day_chunks`]. Only one day's records are in memory at a
/// time — the caller folds a chunk and drops it before asking for the next.
pub struct DayChunks {
    days: Vec<(u64, Vec<LogfileEntry>)>,
    threads: usize,
    next: usize,
    skipped_files: usize,
}

impl DayChunks {
    /// Number of distinct days in the directory.
    pub fn days(&self) -> usize {
        self.days.len()
    }

    /// Foreign (non-logfile) files in the directory; attribute this once
    /// when summing chunk stats to reproduce [`LogDirReader::read_all`]'s
    /// totals.
    pub fn skipped_files(&self) -> usize {
        self.skipped_files
    }

    /// Reads, parses and canonically sorts the next day. `None` when every
    /// day has been consumed.
    pub fn next_day(&mut self) -> Option<std::io::Result<DayChunk>> {
        self.next_day_timed(&PhaseTimers::new())
    }

    /// [`Self::next_day`], charging parse thread-time to [`Phase::Parse`]
    /// and the canonical sort to [`Phase::Sort`].
    pub fn next_day_timed(&mut self, timers: &PhaseTimers) -> Option<std::io::Result<DayChunk>> {
        let (day, files) = self.days.get(self.next)?;
        self.next += 1;
        Some(
            read_files_parallel(files, self.threads, timers).map(|(mut records, stats)| {
                let t_sort = std::time::Instant::now();
                records.sort_by_key(|r| (r.t, r.origin, r.seq));
                timers.add(Phase::Sort, saturating_nanos(t_sort));
                DayChunk {
                    day: *day,
                    records,
                    stats,
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Payload, SessionEvent};
    use crate::sink::{DirSink, TraceSink};
    use std::io::Write;
    use u1_core::{SessionId, SimTime, UserId};

    #[test]
    fn logfile_names_round_trip() {
        for (m, p, d) in [(0u16, 0u16, 0u64), (3, 23, 28), (11, 255, 99)] {
            let name = logfile_name(MachineId::new(m), ProcessId::new(p), d);
            let (m2, p2, d2) = parse_logfile_name(&name).expect(&name);
            assert_eq!(m2.name(), MachineId::new(m).name());
            assert_eq!(p2.raw(), p);
            assert_eq!(d2, d);
        }
    }

    #[test]
    fn rejects_foreign_file_names() {
        assert_eq!(parse_logfile_name("README.md"), None);
        assert_eq!(parse_logfile_name("production-whitecurrant-1.csv"), None);
        assert_eq!(parse_logfile_name("production-mars-1-day01.csv"), None);
        assert_eq!(
            parse_logfile_name("production-whitecurrant-x-day01.csv"),
            None
        );
    }

    fn write_corrupted_dir(dir: &Path) -> Vec<TraceRecord> {
        let _ = fs::remove_dir_all(dir);
        let mut expected = Vec::new();
        {
            let sink = DirSink::create(dir).unwrap();
            for i in 0..50u64 {
                let rec = TraceRecord::new(
                    SimTime::from_secs(i * 100),
                    MachineId::new((i % 3) as u16),
                    ProcessId::new((i % 4) as u16),
                    Payload::Session {
                        event: if i % 2 == 0 {
                            SessionEvent::Open
                        } else {
                            SessionEvent::Close
                        },
                        session: SessionId::new(i),
                        user: UserId::new(i % 7),
                    },
                );
                expected.push(rec.clone());
                sink.record(rec);
            }
            sink.flush();
        }
        // Corrupt one file with garbage lines and drop in a foreign file.
        let garbage_target = fs::read_dir(dir).unwrap().next().unwrap().unwrap().path();
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(&garbage_target)
                .unwrap();
            writeln!(f, "totally,bogus,line").unwrap();
            writeln!(f, "12345,frobnicate").unwrap();
        }
        fs::write(dir.join("notes.txt"), "not a trace\n").unwrap();
        expected.sort_by_key(|r| r.t);
        expected
    }

    #[test]
    fn write_then_read_round_trip_with_corruption_tolerance() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-test-{}", std::process::id()));
        let expected = write_corrupted_dir(&dir);

        let (records, stats) = LogDirReader::new(&dir).read_all().unwrap();
        assert_eq!(stats.parsed, 50);
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.skipped_files, 1);
        assert!(stats.malformed_fraction() > 0.0);
        assert_eq!(records.len(), 50);
        // Sorted by time.
        assert!(records.windows(2).all(|w| w[0].t <= w[1].t));
        // Same multiset of payloads.
        for (a, b) in records.iter().zip(expected.iter()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.payload, b.payload);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_read_is_identical_to_serial_at_every_thread_count() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-par-test-{}", std::process::id()));
        let _ = write_corrupted_dir(&dir);

        let reader = LogDirReader::new(&dir);
        let (serial, serial_stats) = reader.read_all().unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let (par, par_stats) = reader.read_all_parallel(threads).unwrap();
            assert_eq!(par_stats, serial_stats, "stats differ at {threads} threads");
            assert_eq!(par, serial, "records differ at {threads} threads");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite for the byte-range reader: adversarial split points — mid
    /// line, every line boundary, past EOF, degenerate zero-width — must
    /// reproduce the serial per-file records and [`ParseStats`] exactly,
    /// including on an empty file and a file whose final line has no
    /// trailing newline.
    #[test]
    fn range_reader_survives_adversarial_split_points() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-split-test-{}", std::process::id()));
        let _ = write_corrupted_dir(&dir);
        // Adversarial additions: an empty (but valid-named) logfile and a
        // file whose final line lacks the trailing newline.
        let empty = dir.join("production-whitecurrant-7-day00.csv");
        fs::write(&empty, b"").unwrap();
        let target = dir.join("production-whitecurrant-1-day00.csv");
        let mut bytes = fs::read(&target).unwrap_or_default();
        if bytes.last() == Some(&b'\n') {
            bytes.pop();
            fs::write(&target, &bytes).unwrap();
        }

        let (files, _) = LogDirReader::new(&dir).logfiles().unwrap();
        assert!(files.iter().any(|(p, _, _, _)| p == &empty));
        for (path, machine, process, _day) in &files {
            let (serial, serial_stats) = read_logfile(path, *machine, *process).unwrap();
            let len = fs::metadata(path).unwrap().len();
            let splits: Vec<Vec<u64>> = vec![
                vec![],                              // no split at all
                vec![0, len, len + 10_000],          // boundaries + past EOF
                vec![1],                             // mid first line
                vec![len / 2],                       // mid file
                vec![len.saturating_sub(1)],         // inside the final line
                (0..len).step_by(7).collect(),       // dense, mostly mid-line
                (0..=len).collect(),                 // every byte a split
                vec![len / 3, len / 3, 2 * len / 3], // duplicates
            ];
            for split in &splits {
                let (recs, stats) =
                    read_logfile_at_splits(path, *machine, *process, split).unwrap();
                assert_eq!(
                    stats, serial_stats,
                    "per-file stats differ at splits {split:?} for {path:?}"
                );
                assert_eq!(
                    recs, serial,
                    "records differ at splits {split:?} for {path:?}"
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The directory-level byte-range reader at thread counts 1/2/4/8 on a
    /// directory containing an empty file and a no-trailing-newline file:
    /// records and stats byte-identical to serial, and the planner actually
    /// splits a large file into multiple ranges.
    #[test]
    fn byte_range_parallel_read_matches_serial_with_edge_files() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-range-test-{}", std::process::id()));
        let _ = write_corrupted_dir(&dir);
        fs::write(dir.join("production-whitecurrant-7-day00.csv"), b"").unwrap();
        let target = dir.join("production-whitecurrant-1-day00.csv");
        let mut bytes = fs::read(&target).unwrap_or_default();
        if bytes.last() == Some(&b'\n') {
            bytes.pop();
            fs::write(&target, &bytes).unwrap();
        }

        let reader = LogDirReader::new(&dir);
        let (serial, serial_stats) = reader.read_all().unwrap();
        for threads in [1, 2, 4, 8] {
            let (par, par_stats) = reader.read_all_parallel(threads).unwrap();
            assert_eq!(par_stats, serial_stats, "stats differ at {threads} threads");
            assert_eq!(par, serial, "records differ at {threads} threads");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Day-chunked reading of a *stamped* directory: chunks come back in
    /// ascending day order, each internally sorted by `(t, origin, seq)`,
    /// and their concatenation is the full canonical order — including
    /// equal-timestamp records from different origins, which `t`-only
    /// sorting cannot break deterministically.
    #[test]
    fn stamped_day_chunks_concatenate_into_canonical_order() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-days-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut expected = Vec::new();
        {
            let sink = DirSink::create_stamped(&dir).unwrap();
            let mut i = 0u64;
            for day in 0..3u64 {
                for origin in 0..4u32 {
                    for seq in 0..25u64 {
                        // Deliberate cross-origin timestamp collisions: t
                        // depends on seq but not origin.
                        let mut rec = TraceRecord::new(
                            SimTime::from_secs(day * 86_400 + seq * 60),
                            MachineId::new((i % 3) as u16),
                            ProcessId::new((i % 4) as u16),
                            Payload::Session {
                                event: SessionEvent::Open,
                                session: SessionId::new(i),
                                user: UserId::new(origin as u64),
                            },
                        );
                        rec.origin = origin;
                        rec.seq = seq;
                        expected.push(rec.clone());
                        sink.record(rec);
                        i += 1;
                    }
                }
            }
            sink.flush();
        }
        expected.sort_by_key(|r| (r.t, r.origin, r.seq));

        for threads in [1, 4] {
            let mut chunks = LogDirReader::new(&dir).day_chunks(threads).unwrap();
            assert_eq!(chunks.days(), 3);
            assert_eq!(chunks.skipped_files(), 0);
            let mut all = Vec::new();
            let mut stats = ParseStats::default();
            let mut last_day = None;
            while let Some(chunk) = chunks.next_day() {
                let chunk = chunk.unwrap();
                assert!(last_day < Some(chunk.day), "days out of order");
                last_day = Some(chunk.day);
                assert!(chunk.records.iter().all(|r| r.t.day_index() == chunk.day));
                stats.absorb(&chunk.stats);
                all.extend(chunk.records);
            }
            assert_eq!(stats.parsed, expected.len());
            assert_eq!(stats.malformed, 0);
            assert_eq!(all, expected, "at {threads} threads");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The range planner: every byte covered exactly once, per-file `first`
    /// flags, empty files kept, large files split.
    #[test]
    fn range_planner_covers_every_byte_exactly_once() {
        let sizes = [3 * MIN_RANGE_BYTES + 17, 0, 1, MIN_RANGE_BYTES];
        let tasks = plan_ranges(&sizes, 4);
        for (file, &len) in sizes.iter().enumerate() {
            let mine: Vec<&RangeTask> = tasks.iter().filter(|t| t.file == file).collect();
            assert!(!mine.is_empty(), "file {file} lost");
            assert!(mine[0].first && mine[0].start == 0);
            assert!(mine[1..].iter().all(|t| !t.first));
            assert_eq!(mine.last().unwrap().end, len);
            for w in mine.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap/overlap in file {file}");
            }
        }
        // The big file actually split; the empty file still has one task.
        assert!(tasks.iter().filter(|t| t.file == 0).count() > 1);
        assert_eq!(
            tasks
                .iter()
                .filter(|t| t.file == 1)
                .map(|t| (t.start, t.end))
                .collect::<Vec<_>>(),
            vec![(0, 0)]
        );
    }
}
