//! Logfile naming, directory reading and timestamp merging.
//!
//! Mirrors §4 of the paper: one logfile per server process per day, named
//! `production-<machine>-<process>-<date>`; each file is internally
//! sequential; a merged, timestamp-sorted view is what the analyses consume;
//! ~1% of lines may fail to parse and are skipped (and counted).

use crate::csvline;
use crate::event::TraceRecord;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use u1_core::{MachineId, ProcessId};

/// Builds the logfile name for a (machine, process, day) triple, e.g.
/// `production-whitecurrant-23-day05.csv` — same structure as the paper's
/// `production-whitecurrant-23-20140128` with a trace-relative day index
/// instead of a calendar date.
pub fn logfile_name(machine: MachineId, process: ProcessId, day: u64) -> String {
    format!(
        "production-{}-{}-day{:02}.csv",
        machine.name(),
        process.raw(),
        day
    )
}

/// Parses a logfile name back into its (machine, process, day) components.
/// Returns `None` for files that are not trace logfiles.
pub fn parse_logfile_name(name: &str) -> Option<(MachineId, ProcessId, u64)> {
    let rest = name.strip_prefix("production-")?.strip_suffix(".csv")?;
    // rest = <machinename>-<process>-dayNN ; machine names contain no '-'.
    let mut parts = rest.split('-');
    let machine_name = parts.next()?;
    let process: u16 = parts.next()?.parse().ok()?;
    let day: u64 = parts.next()?.strip_prefix("day")?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    // Recover the machine id from its name. Names cycle every 12 ids; we use
    // the first id with that name, which is unique for clusters of <= 12
    // machines (the original had 6).
    let machine = (0u16..12)
        .map(MachineId::new)
        .find(|m| m.name() == machine_name)?;
    Some((machine, ProcessId::new(process), day))
}

/// Counters describing a directory read.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ParseStats {
    pub files: usize,
    pub lines: usize,
    pub parsed: usize,
    pub malformed: usize,
    /// Files whose names did not look like trace logfiles.
    pub skipped_files: usize,
}

impl ParseStats {
    /// Fraction of lines that failed to parse (the paper reports ~1%).
    pub fn malformed_fraction(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.malformed as f64 / self.lines as f64
        }
    }
}

/// Reads a directory of trace logfiles.
pub struct LogDirReader {
    dir: PathBuf,
}

impl LogDirReader {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Reads and merges every logfile, returning records sorted by
    /// timestamp (stable within ties) plus parse statistics. Malformed lines
    /// are counted and skipped, never fatal — matching the original
    /// pipeline's tolerance.
    pub fn read_all(&self) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
        let mut stats = ParseStats::default();
        let mut records = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        // Deterministic file order so ties in timestamps break identically
        // across runs.
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            let Some((machine, process, _day)) = parse_logfile_name(name) else {
                stats.skipped_files += 1;
                continue;
            };
            stats.files += 1;
            self.read_file(&path, machine, process, &mut records, &mut stats)?;
        }
        records.sort_by_key(|r| r.t);
        Ok((records, stats))
    }

    fn read_file(
        &self,
        path: &Path,
        machine: MachineId,
        process: ProcessId,
        out: &mut Vec<TraceRecord>,
        stats: &mut ParseStats,
    ) -> std::io::Result<()> {
        let file = fs::File::open(path)?;
        let reader = BufReader::new(file);
        for line in reader.lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            stats.lines += 1;
            match csvline::from_line(&line, machine, process) {
                Ok(rec) => {
                    stats.parsed += 1;
                    out.push(rec);
                }
                Err(_) => stats.malformed += 1,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Payload, SessionEvent};
    use crate::sink::{DirSink, TraceSink};
    use std::io::Write;
    use u1_core::{SessionId, SimTime, UserId};

    #[test]
    fn logfile_names_round_trip() {
        for (m, p, d) in [(0u16, 0u16, 0u64), (3, 23, 28), (11, 255, 99)] {
            let name = logfile_name(MachineId::new(m), ProcessId::new(p), d);
            let (m2, p2, d2) = parse_logfile_name(&name).expect(&name);
            assert_eq!(m2.name(), MachineId::new(m).name());
            assert_eq!(p2.raw(), p);
            assert_eq!(d2, d);
        }
    }

    #[test]
    fn rejects_foreign_file_names() {
        assert_eq!(parse_logfile_name("README.md"), None);
        assert_eq!(parse_logfile_name("production-whitecurrant-1.csv"), None);
        assert_eq!(parse_logfile_name("production-mars-1-day01.csv"), None);
        assert_eq!(
            parse_logfile_name("production-whitecurrant-x-day01.csv"),
            None
        );
    }

    #[test]
    fn write_then_read_round_trip_with_corruption_tolerance() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut expected = Vec::new();
        {
            let sink = DirSink::create(&dir).unwrap();
            for i in 0..50u64 {
                let rec = TraceRecord::new(
                    SimTime::from_secs(i * 100),
                    MachineId::new((i % 3) as u16),
                    ProcessId::new((i % 4) as u16),
                    Payload::Session {
                        event: if i % 2 == 0 {
                            SessionEvent::Open
                        } else {
                            SessionEvent::Close
                        },
                        session: SessionId::new(i),
                        user: UserId::new(i % 7),
                    },
                );
                expected.push(rec.clone());
                sink.record(rec);
            }
            sink.flush();
        }
        // Corrupt one file with garbage lines and drop in a foreign file.
        let garbage_target = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(&garbage_target)
                .unwrap();
            writeln!(f, "totally,bogus,line").unwrap();
            writeln!(f, "12345,frobnicate").unwrap();
        }
        fs::write(dir.join("notes.txt"), "not a trace\n").unwrap();

        let (records, stats) = LogDirReader::new(&dir).read_all().unwrap();
        assert_eq!(stats.parsed, 50);
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.skipped_files, 1);
        assert!(stats.malformed_fraction() > 0.0);
        assert_eq!(records.len(), 50);
        // Sorted by time.
        assert!(records.windows(2).all(|w| w[0].t <= w[1].t));
        // Same multiset of payloads.
        expected.sort_by_key(|r| r.t);
        for (a, b) in records.iter().zip(expected.iter()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.payload, b.payload);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
