//! Logfile naming, directory reading and timestamp merging.
//!
//! Mirrors §4 of the paper: one logfile per server process per day, named
//! `production-<machine>-<process>-<date>`; each file is internally
//! sequential; a merged, timestamp-sorted view is what the analyses consume;
//! ~1% of lines may fail to parse and are skipped (and counted).
//!
//! The read path is allocation-light: lines are read into one reused buffer
//! per file (no per-line `String`), each file yields its own [`ParseStats`]
//! so the parallel reader can sum them, and [`LogDirReader::read_all_parallel`]
//! parses one file per task and merges — producing output byte-identical to
//! the serial [`LogDirReader::read_all`].

use crate::csvline;
use crate::event::TraceRecord;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use u1_core::{MachineId, ProcessId};

/// Builds the logfile name for a (machine, process, day) triple, e.g.
/// `production-whitecurrant-23-day05.csv` — same structure as the paper's
/// `production-whitecurrant-23-20140128` with a trace-relative day index
/// instead of a calendar date.
pub fn logfile_name(machine: MachineId, process: ProcessId, day: u64) -> String {
    format!(
        "production-{}-{}-day{:02}.csv",
        machine.name(),
        process.raw(),
        day
    )
}

/// Parses a logfile name back into its (machine, process, day) components.
/// Returns `None` for files that are not trace logfiles.
pub fn parse_logfile_name(name: &str) -> Option<(MachineId, ProcessId, u64)> {
    let rest = name.strip_prefix("production-")?.strip_suffix(".csv")?;
    // rest = <machinename>-<process>-dayNN ; machine names contain no '-'.
    let mut parts = rest.split('-');
    let machine_name = parts.next()?;
    let process: u16 = parts.next()?.parse().ok()?;
    let day: u64 = parts.next()?.strip_prefix("day")?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    // Recover the machine id from its name. Names cycle every 12 ids; we use
    // the first id with that name, which is unique for clusters of <= 12
    // machines (the original had 6).
    let machine = (0u16..12)
        .map(MachineId::new)
        .find(|m| m.name() == machine_name)?;
    Some((machine, ProcessId::new(process), day))
}

/// Counters describing a file or directory read.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ParseStats {
    pub files: usize,
    pub lines: usize,
    pub parsed: usize,
    pub malformed: usize,
    /// Files whose names did not look like trace logfiles.
    pub skipped_files: usize,
}

impl ParseStats {
    /// Fraction of lines that failed to parse (the paper reports ~1%).
    pub fn malformed_fraction(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.malformed as f64 / self.lines as f64
        }
    }

    /// Folds another file's (or directory shard's) counters into this one —
    /// the merge used by the parallel reader.
    pub fn absorb(&mut self, other: &ParseStats) {
        self.files += other.files;
        self.lines += other.lines;
        self.parsed += other.parsed;
        self.malformed += other.malformed;
        self.skipped_files += other.skipped_files;
    }
}

/// Parses a single logfile into records plus its own [`ParseStats`]
/// (`files == 1`). Lines go through one reused buffer — no per-line
/// allocation. Malformed lines are counted and skipped, never fatal.
pub fn read_logfile(
    path: &Path,
    machine: MachineId,
    process: ProcessId,
) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
    let mut stats = ParseStats {
        files: 1,
        ..ParseStats::default()
    };
    let mut records = Vec::new();
    let file = fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut buf = String::with_capacity(256);
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        // read_line keeps the terminator; strip `\n` / `\r\n` manually.
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        stats.lines += 1;
        match csvline::from_line(line, machine, process) {
            Ok(rec) => {
                stats.parsed += 1;
                records.push(rec);
            }
            Err(_) => stats.malformed += 1,
        }
    }
    Ok((records, stats))
}

/// A parsed logfile path with the origin encoded in its name.
type LogfileEntry = (PathBuf, MachineId, ProcessId);

/// Reads a directory of trace logfiles.
pub struct LogDirReader {
    dir: PathBuf,
}

impl LogDirReader {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory's logfiles in deterministic (path-sorted) order, plus
    /// the count of skipped foreign files.
    fn logfiles(&self) -> std::io::Result<(Vec<LogfileEntry>, usize)> {
        let mut entries: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        // Deterministic file order so ties in timestamps break identically
        // across runs.
        entries.sort();
        let mut files = Vec::with_capacity(entries.len());
        let mut skipped = 0usize;
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            match parse_logfile_name(name) {
                Some((machine, process, _day)) => files.push((path, machine, process)),
                None => skipped += 1,
            }
        }
        Ok((files, skipped))
    }

    /// Reads and merges every logfile, returning records sorted by
    /// timestamp (stable within ties) plus parse statistics. Malformed lines
    /// are counted and skipped, never fatal — matching the original
    /// pipeline's tolerance.
    pub fn read_all(&self) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
        let (files, skipped_files) = self.logfiles()?;
        let mut stats = ParseStats {
            skipped_files,
            ..ParseStats::default()
        };
        let mut records = Vec::new();
        for (path, machine, process) in &files {
            let (recs, file_stats) = read_logfile(path, *machine, *process)?;
            stats.absorb(&file_stats);
            records.extend(recs);
        }
        records.sort_by_key(|r| r.t);
        Ok((records, stats))
    }

    /// [`Self::read_all`] with one parse task per logfile, fanned out over
    /// `threads` workers. Per-file record vectors are concatenated in the
    /// same path-sorted order as the serial reader and stable-sorted by
    /// timestamp, so the output — records and stats — is identical to
    /// `read_all` at every thread count.
    pub fn read_all_parallel(
        &self,
        threads: usize,
    ) -> std::io::Result<(Vec<TraceRecord>, ParseStats)> {
        let (files, skipped_files) = self.logfiles()?;
        let threads = threads.max(1).min(files.len().max(1));
        if threads <= 1 {
            return self.read_all();
        }
        type FileResult = std::io::Result<(Vec<TraceRecord>, ParseStats)>;
        let slots: Mutex<Vec<Option<FileResult>>> =
            Mutex::new((0..files.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((path, machine, process)) = files.get(i) else {
                        break;
                    };
                    let result = read_logfile(path, *machine, *process);
                    if let Ok(mut slots) = slots.lock() {
                        slots[i] = Some(result);
                    }
                });
            }
        });
        let mut stats = ParseStats {
            skipped_files,
            ..ParseStats::default()
        };
        let mut records = Vec::new();
        let slots = slots
            .into_inner()
            .map_err(|_| std::io::Error::other("parse worker panicked"))?;
        for slot in slots {
            let (recs, file_stats) =
                slot.ok_or_else(|| std::io::Error::other("parse task missing"))??;
            stats.absorb(&file_stats);
            records.extend(recs);
        }
        records.sort_by_key(|r| r.t);
        Ok((records, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Payload, SessionEvent};
    use crate::sink::{DirSink, TraceSink};
    use std::io::Write;
    use u1_core::{SessionId, SimTime, UserId};

    #[test]
    fn logfile_names_round_trip() {
        for (m, p, d) in [(0u16, 0u16, 0u64), (3, 23, 28), (11, 255, 99)] {
            let name = logfile_name(MachineId::new(m), ProcessId::new(p), d);
            let (m2, p2, d2) = parse_logfile_name(&name).expect(&name);
            assert_eq!(m2.name(), MachineId::new(m).name());
            assert_eq!(p2.raw(), p);
            assert_eq!(d2, d);
        }
    }

    #[test]
    fn rejects_foreign_file_names() {
        assert_eq!(parse_logfile_name("README.md"), None);
        assert_eq!(parse_logfile_name("production-whitecurrant-1.csv"), None);
        assert_eq!(parse_logfile_name("production-mars-1-day01.csv"), None);
        assert_eq!(
            parse_logfile_name("production-whitecurrant-x-day01.csv"),
            None
        );
    }

    fn write_corrupted_dir(dir: &Path) -> Vec<TraceRecord> {
        let _ = fs::remove_dir_all(dir);
        let mut expected = Vec::new();
        {
            let sink = DirSink::create(dir).unwrap();
            for i in 0..50u64 {
                let rec = TraceRecord::new(
                    SimTime::from_secs(i * 100),
                    MachineId::new((i % 3) as u16),
                    ProcessId::new((i % 4) as u16),
                    Payload::Session {
                        event: if i % 2 == 0 {
                            SessionEvent::Open
                        } else {
                            SessionEvent::Close
                        },
                        session: SessionId::new(i),
                        user: UserId::new(i % 7),
                    },
                );
                expected.push(rec.clone());
                sink.record(rec);
            }
            sink.flush();
        }
        // Corrupt one file with garbage lines and drop in a foreign file.
        let garbage_target = fs::read_dir(dir).unwrap().next().unwrap().unwrap().path();
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(&garbage_target)
                .unwrap();
            writeln!(f, "totally,bogus,line").unwrap();
            writeln!(f, "12345,frobnicate").unwrap();
        }
        fs::write(dir.join("notes.txt"), "not a trace\n").unwrap();
        expected.sort_by_key(|r| r.t);
        expected
    }

    #[test]
    fn write_then_read_round_trip_with_corruption_tolerance() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-test-{}", std::process::id()));
        let expected = write_corrupted_dir(&dir);

        let (records, stats) = LogDirReader::new(&dir).read_all().unwrap();
        assert_eq!(stats.parsed, 50);
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.skipped_files, 1);
        assert!(stats.malformed_fraction() > 0.0);
        assert_eq!(records.len(), 50);
        // Sorted by time.
        assert!(records.windows(2).all(|w| w[0].t <= w[1].t));
        // Same multiset of payloads.
        for (a, b) in records.iter().zip(expected.iter()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.payload, b.payload);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_read_is_identical_to_serial_at_every_thread_count() {
        let dir = std::env::temp_dir().join(format!("u1-logdir-par-test-{}", std::process::id()));
        let _ = write_corrupted_dir(&dir);

        let reader = LogDirReader::new(&dir);
        let (serial, serial_stats) = reader.read_all().unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let (par, par_stats) = reader.read_all_parallel(threads).unwrap();
            assert_eq!(par_stats, serial_stats, "stats differ at {threads} threads");
            assert_eq!(par, serial, "records differ at {threads} threads");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
