//! Trace anonymization.
//!
//! §4: "Canonical anonymized sensitive information to build the trace (user
//! ids, file names, etc.)". We reproduce that release step: a keyed
//! bijective scrambling of user/session/node/volume ids and removal of file
//! extensions beyond their category-defining suffix. The mapping is
//! deterministic given the key, so two records of the same user still
//! correlate after anonymization (which the paper's analyses require), but
//! raw identities cannot be recovered without the key.

use crate::event::{Payload, TraceRecord};

/// A keyed anonymizer. Ids are passed through a Feistel-style bijection on
/// 64 bits, so anonymization preserves distinctness (no two users collapse
/// into one — that would corrupt per-user statistics).
#[derive(Clone, Debug)]
pub struct Anonymizer {
    key: u64,
}

impl Anonymizer {
    pub fn new(key: u64) -> Self {
        Self { key }
    }

    /// 4-round Feistel permutation over the 64-bit id space.
    fn permute(&self, x: u64) -> u64 {
        let mut l = (x >> 32) as u32;
        let mut r = (x & 0xFFFF_FFFF) as u32;
        for round in 0..4u64 {
            let k = self.key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ round;
            let f = (r as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(k);
            let f = ((f >> 32) ^ f) as u32;
            let nl = r;
            r = l ^ f;
            l = nl;
        }
        ((l as u64) << 32) | r as u64
    }

    /// Anonymizes one record in place.
    pub fn anonymize(&self, rec: &mut TraceRecord) {
        match &mut rec.payload {
            Payload::Session { session, user, .. } => {
                session.0 = self.permute(session.0);
                user.0 = self.permute(user.0);
            }
            Payload::Storage {
                session,
                user,
                volume,
                node,
                ..
            } => {
                session.0 = self.permute(session.0);
                user.0 = self.permute(user.0);
                volume.0 = self.permute(volume.0);
                if let Some(n) = node {
                    n.0 = self.permute(n.0);
                }
                // Extension is kept: it is the category signal §5.3 needs and
                // is not personally identifying. Hashes are already opaque.
            }
            Payload::Rpc { user, .. } => {
                user.0 = self.permute(user.0);
            }
            Payload::Auth { user, .. } => {
                user.0 = self.permute(user.0);
            }
        }
    }

    /// Anonymizes a whole trace.
    pub fn anonymize_all(&self, recs: &mut [TraceRecord]) {
        for rec in recs {
            self.anonymize(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SessionEvent;
    use std::collections::HashSet;
    use u1_core::{MachineId, ProcessId, SessionId, SimTime, UserId};

    fn session_rec(user: u64) -> TraceRecord {
        TraceRecord::new(
            SimTime::ZERO,
            MachineId::new(0),
            ProcessId::new(0),
            Payload::Session {
                event: SessionEvent::Open,
                session: SessionId::new(user * 10),
                user: UserId::new(user),
            },
        )
    }

    #[test]
    fn permutation_is_injective_on_a_sample() {
        let a = Anonymizer::new(42);
        let mut seen = HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(a.permute(x)), "collision at {x}");
        }
    }

    #[test]
    fn same_user_maps_to_same_pseudonym() {
        let a = Anonymizer::new(7);
        let mut r1 = session_rec(5);
        let mut r2 = session_rec(5);
        a.anonymize(&mut r1);
        a.anonymize(&mut r2);
        assert_eq!(r1.payload.user(), r2.payload.user());
        assert_ne!(r1.payload.user(), UserId::new(5));
    }

    #[test]
    fn different_keys_give_different_pseudonyms() {
        let mut r1 = session_rec(5);
        let mut r2 = session_rec(5);
        Anonymizer::new(1).anonymize(&mut r1);
        Anonymizer::new(2).anonymize(&mut r2);
        assert_ne!(r1.payload.user(), r2.payload.user());
    }

    #[test]
    fn anonymize_all_covers_every_record() {
        let a = Anonymizer::new(3);
        let mut recs: Vec<TraceRecord> = (0..10).map(session_rec).collect();
        a.anonymize_all(&mut recs);
        let users: HashSet<u64> = recs.iter().map(|r| r.payload.user().raw()).collect();
        assert_eq!(users.len(), 10);
        assert!(!users.contains(&0) || a.permute(0) == 0); // scrambled
    }
}
