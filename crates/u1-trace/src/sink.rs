//! Trace sinks: where running server processes emit their records.

use crate::csvline;
use crate::event::TraceRecord;
use crate::logfile::logfile_name;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use u1_core::{MachineId, ProcessId};

/// Something that accepts trace records. Implementations must be
/// thread-safe: every API/RPC process logs through a shared sink.
pub trait TraceSink: Send + Sync {
    fn record(&self, rec: TraceRecord);

    /// Flushes buffered output (no-op for memory sinks).
    fn flush(&self) {}
}

/// Discards all records. Useful for benchmarks isolating server cost.
#[derive(Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _rec: TraceRecord) {}
}

/// Collects records in memory, for analyses that skip the logfile round
/// trip. Internally striped by record origin so concurrent driver
/// partitions don't serialize on one lock; `take_sorted` merges the stripes
/// into the canonical order.
#[derive(Debug)]
pub struct MemorySink {
    stripes: Vec<Mutex<Vec<TraceRecord>>>,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self {
            stripes: (0..16).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }

    /// Drains and returns all records in canonical order: sorted by
    /// `(t, origin, seq)`. The stable sort keeps legacy single-threaded
    /// records (all stamped `(0, 0)`) in their per-process emission order,
    /// and gives parallel runs an order independent of worker count.
    pub fn take_sorted(&self) -> Vec<TraceRecord> {
        let mut recs: Vec<TraceRecord> = Vec::new();
        for stripe in &self.stripes {
            recs.append(&mut std::mem::take(&mut *stripe.lock()));
        }
        recs.sort_by_key(|r| (r.t, r.origin, r.seq));
        recs
    }
}

impl TraceSink for MemorySink {
    fn record(&self, rec: TraceRecord) {
        let stripe = rec.origin as usize % self.stripes.len();
        self.stripes[stripe].lock().push(rec);
    }
}

/// Writes paper-style logfiles under a directory: one file per
/// (machine, process, day), rotated as simulated days advance.
/// Open logfile for one (machine, process): the simulated day it covers
/// and the buffered writer.
type DayWriter = (u64, BufWriter<File>);

pub struct DirSink {
    dir: PathBuf,
    writers: Mutex<HashMap<(MachineId, ProcessId), DayWriter>>,
}

impl DirSink {
    /// Creates the directory (and parents) if needed.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            writers: Mutex::new(HashMap::new()),
        })
    }

    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn open(&self, machine: MachineId, process: ProcessId, day: u64) -> BufWriter<File> {
        let path = self.dir.join(logfile_name(machine, process, day));
        // Append: a process may be asked to re-open a day's file after a
        // rotation race; losing previously written lines would corrupt the
        // trace.
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open trace logfile {}: {e}", path.display()));
        BufWriter::new(file)
    }
}

impl TraceSink for DirSink {
    fn record(&self, rec: TraceRecord) {
        let day = rec.t.day_index();
        let key = (rec.machine, rec.process);
        let line = csvline::to_line(&rec);
        let mut writers = self.writers.lock();
        let entry = writers.entry(key);
        let slot = match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get().0 != day {
                    // Day changed for this process: flush and rotate, like
                    // the original "one log file per server/service and day".
                    let (_, mut w) = o.insert((day, self.open(rec.machine, rec.process, day)));
                    let _ = w.flush();
                }
                o.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((day, self.open(rec.machine, rec.process, day)))
            }
        };
        let _ = writeln!(slot.1, "{line}");
    }

    fn flush(&self) {
        for (_, (_, w)) in self.writers.lock().iter_mut() {
            let _ = w.flush();
        }
    }
}

impl Drop for DirSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Payload, SessionEvent};
    use u1_core::{SessionId, SimTime, UserId};

    fn rec(t_secs: u64, machine: u16, process: u16) -> TraceRecord {
        TraceRecord::new(
            SimTime::from_secs(t_secs),
            MachineId::new(machine),
            ProcessId::new(process),
            Payload::Session {
                event: SessionEvent::Open,
                session: SessionId::new(t_secs),
                user: UserId::new(1),
            },
        )
    }

    #[test]
    fn memory_sink_sorts_by_time() {
        let sink = MemorySink::new();
        sink.record(rec(30, 0, 0));
        sink.record(rec(10, 0, 0));
        sink.record(rec(20, 0, 0));
        let recs = sink.take_sorted();
        let times: Vec<u64> = recs.iter().map(|r| r.t.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(sink.is_empty());
    }

    #[test]
    fn dir_sink_rotates_per_day_and_process() {
        let dir = std::env::temp_dir().join(format!("u1-trace-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let sink = DirSink::create(&dir).unwrap();
            sink.record(rec(10, 0, 1)); // day 0, proc 1
            sink.record(rec(20, 0, 2)); // day 0, proc 2
            sink.record(rec(86_400 + 5, 0, 1)); // day 1, proc 1
            sink.flush();
        }
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "production-whitecurrant-1-day00.csv",
                "production-whitecurrant-1-day01.csv",
                "production-whitecurrant-2-day00.csv",
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
