//! Trace sinks: where running server processes emit their records.

use crate::csvline;
use crate::event::TraceRecord;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use u1_core::{CachePadded, MachineId, ProcessId, SimTime};

/// Stripe count used by the lock-sharded sinks below. Origins (driver
/// partitions) and (machine, process) pairs are spread across this many
/// independent locks so concurrent emitters rarely contend.
///
/// Origin-keyed sinks ([`MemorySink`], [`BufferedSink`]) stripe by
/// `origin % STRIPES`; origins are small dense integers (one per metastore
/// shard plus the coordinator — 11 by default), so 32 stripes is a perfect
/// collision-free partition up to 32 driver partitions. Each stripe lock is
/// additionally padded to its own cache line: a `parking_lot` mutex plus a
/// `Vec` header is well under 64 bytes, so unpadded neighbours would
/// false-share a line between workers even when their locks never collide.
const STRIPES: usize = 32;

/// Records buffered per origin before [`BufferedSink`] pushes a batch to its
/// inner sink on its own (callers still flush explicitly at day boundaries).
const BUFFER_FLUSH_THRESHOLD: usize = 4096;

/// Something that accepts trace records. Implementations must be
/// thread-safe: every API/RPC process logs through a shared sink.
pub trait TraceSink: Send + Sync {
    fn record(&self, rec: TraceRecord);

    /// Accepts a batch of records. The default forwards record by record;
    /// sinks with per-record locking override this to take their lock once
    /// per batch instead.
    fn record_batch(&self, recs: &[TraceRecord]) {
        for rec in recs {
            self.record(rec.clone());
        }
    }

    /// Like [`TraceSink::record_batch`] but drains `recs`, moving the
    /// records instead of cloning them (a `Storage` record owns its `ext`
    /// string). [`BufferedSink`] flushes through this path.
    fn record_batch_owned(&self, recs: &mut Vec<TraceRecord>) {
        for rec in recs.drain(..) {
            self.record(rec);
        }
    }

    /// Accepts one single-origin run in emission order — the shape
    /// [`BufferedSink`] flushes. `origin` is every record's origin stamp.
    /// The default delegates to [`TraceSink::record_batch_owned`]; sinks
    /// that store runs (like [`MemorySink`]) override this to append the
    /// whole vector at once instead of re-pushing record by record.
    fn record_run(&self, origin: u32, run: &mut Vec<TraceRecord>) {
        let _ = origin;
        self.record_batch_owned(run);
    }

    /// Flushes buffered output (no-op for memory sinks).
    fn flush(&self) {}

    /// Flushes buffering specific to one origin (driver partition), leaving
    /// other origins' buffers untouched. The default is a no-op: sinks
    /// without per-origin buffering have already delivered everything.
    /// [`BufferedSink`] overrides this so each driver worker can drain its
    /// own partitions' day buffers in parallel *before* parking at the day
    /// barrier, instead of the coordinator draining every origin serially
    /// while all workers wait.
    fn flush_origin(&self, origin: u32) {
        let _ = origin;
    }

    /// Number of I/O errors this sink has swallowed while running degraded
    /// (0 for in-memory sinks, which cannot fail). Surfaced so run reports
    /// can account for dropped trace output instead of hiding it — see
    /// `DriverReport::trace_io_errors` in `u1-workload`.
    fn io_errors(&self) -> u64 {
        0
    }
}

/// Sharing a sink via `Arc` keeps it a sink, including the batch overrides
/// of the underlying type.
impl<S: TraceSink + ?Sized> TraceSink for std::sync::Arc<S> {
    fn record(&self, rec: TraceRecord) {
        (**self).record(rec);
    }
    fn record_batch(&self, recs: &[TraceRecord]) {
        (**self).record_batch(recs);
    }
    fn record_batch_owned(&self, recs: &mut Vec<TraceRecord>) {
        (**self).record_batch_owned(recs);
    }
    fn record_run(&self, origin: u32, run: &mut Vec<TraceRecord>) {
        (**self).record_run(origin, run);
    }
    fn flush(&self) {
        (**self).flush();
    }
    fn flush_origin(&self, origin: u32) {
        (**self).flush_origin(origin);
    }
    fn io_errors(&self) -> u64 {
        (**self).io_errors()
    }
}

/// Discards all records. Useful for benchmarks isolating server cost.
#[derive(Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _rec: TraceRecord) {}
    fn record_batch(&self, _recs: &[TraceRecord]) {}
    fn record_batch_owned(&self, recs: &mut Vec<TraceRecord>) {
        recs.clear();
    }
    fn record_run(&self, _origin: u32, run: &mut Vec<TraceRecord>) {
        run.clear();
    }
}

/// Per-origin run storage: each driver partition appends to its own vector,
/// so a run is naturally `(t, seq)`-monotonic unless the producer bypassed
/// the partition clock (legacy single-threaded emitters, tests).
type OriginRuns = Vec<(u32, Vec<TraceRecord>)>;

/// Collects records in memory, for analyses that skip the logfile round
/// trip. Records are kept as one run per origin (striped by origin so
/// concurrent driver partitions don't serialize on one lock);
/// `take_sorted` k-way-merges the runs into the canonical order instead of
/// globally sorting millions of records.
#[derive(Debug)]
pub struct MemorySink {
    stripes: Vec<CachePadded<Mutex<OriginRuns>>>,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::with_stripes(STRIPES)
    }
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink with a custom stripe count (collision-free as long as
    /// `stripes` is at least the number of distinct origins).
    pub fn with_stripes(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1))
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().iter().map(|(_, run)| run.len()).sum::<usize>())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.stripes
            .iter()
            .all(|s| s.lock().iter().all(|(_, run)| run.is_empty()))
    }

    fn run_slot(runs: &mut OriginRuns, origin: u32) -> &mut Vec<TraceRecord> {
        // Linear scan: a stripe holds at most a handful of origins (one per
        // driver partition mapping to it), so this beats hashing.
        let idx = match runs.iter().position(|(o, _)| *o == origin) {
            Some(i) => i,
            None => {
                runs.push((origin, Vec::new()));
                runs.len() - 1
            }
        };
        &mut runs[idx].1
    }

    /// Drains and returns all records in canonical order: sorted by
    /// `(t, origin, seq)`. Each per-origin run is already monotonic in
    /// `(t, seq)` (verified, and stable-sorted if a producer emitted out of
    /// order), so a k-way merge reproduces exactly what the previous global
    /// stable sort produced: full keys collide only within one origin's
    /// legacy `(0, 0)`-stamped records, whose emission order both the old
    /// stable sort and the merge preserve.
    pub fn take_sorted(&self) -> Vec<TraceRecord> {
        let mut runs: Vec<Vec<TraceRecord>> = Vec::new();
        for stripe in &self.stripes {
            for (_, run) in std::mem::take(&mut *stripe.lock()) {
                if !run.is_empty() {
                    runs.push(run);
                }
            }
        }
        for run in &mut runs {
            let sorted = run
                .windows(2)
                .all(|w| (w[0].t, w[0].seq) <= (w[1].t, w[1].seq));
            if !sorted {
                run.sort_by_key(|r| (r.t, r.seq));
            }
        }
        merge_runs(runs)
    }
}

impl TraceSink for MemorySink {
    fn record(&self, rec: TraceRecord) {
        let stripe = rec.origin as usize % self.stripes.len();
        let mut runs = self.stripes[stripe].lock();
        Self::run_slot(&mut runs, rec.origin).push(rec);
    }

    fn record_batch_owned(&self, recs: &mut Vec<TraceRecord>) {
        // Batches arriving from `BufferedSink` are single-origin; append
        // contiguous same-origin spans under one lock acquisition.
        let mut drained = recs.drain(..).peekable();
        while let Some(rec) = drained.next() {
            let origin = rec.origin;
            let stripe = origin as usize % self.stripes.len();
            let mut runs = self.stripes[stripe].lock();
            let run = Self::run_slot(&mut runs, origin);
            run.push(rec);
            while let Some(next) = drained.next_if(|r| r.origin == origin) {
                run.push(next);
            }
        }
    }

    fn record_run(&self, origin: u32, recs: &mut Vec<TraceRecord>) {
        // One lock acquisition and one slab memcpy for the whole run.
        let stripe = origin as usize % self.stripes.len();
        let mut runs = self.stripes[stripe].lock();
        Self::run_slot(&mut runs, origin).append(recs);
    }
}

/// Merge key for the k-way merge: the canonical `(t, origin, seq)` order.
type MergeKey = (SimTime, u32, u64);

fn merge_key(rec: &TraceRecord) -> MergeKey {
    (rec.t, rec.origin, rec.seq)
}

/// K-way merges per-origin runs, each sorted by `(t, seq)`, into one vector
/// sorted by `(t, origin, seq)`. Only one head per run lives in the heap at
/// a time, and records of different runs never share a full key (the key
/// includes the origin), so the merge is deterministic.
fn merge_runs(runs: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.into_iter().next().unwrap_or_default(),
        _ => {}
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<TraceRecord>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<TraceRecord>> = Vec::with_capacity(iters.len());
    let mut heap: BinaryHeap<Reverse<(MergeKey, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        let head = it.next();
        if let Some(rec) = &head {
            heap.push(Reverse((merge_key(rec), i)));
        }
        heads.push(head);
    }
    while let Some(Reverse((_, i))) = heap.pop() {
        let next = iters[i].next();
        if let Some(rec) = &next {
            heap.push(Reverse((merge_key(rec), i)));
        }
        if let Some(rec) = std::mem::replace(&mut heads[i], next) {
            out.push(rec);
        }
    }
    out
}

/// Buffers records per origin in front of an inner sink, so hot emission
/// paths touch an uncontended stripe instead of the inner sink's locks.
///
/// Workers in `u1-workload::driver` flush at day boundaries (all partitions
/// parked on the barrier), and the buffer self-flushes an origin's run when
/// it reaches `BUFFER_FLUSH_THRESHOLD` records. Because each origin is
/// emitted by exactly one thread and delivered to the inner sink in
/// emission order, buffering never changes the canonical `(t, origin, seq)`
/// trace — only the interleaving of already-concurrent origins.
pub struct BufferedSink<S: TraceSink> {
    inner: S,
    stripes: Vec<CachePadded<Mutex<OriginRuns>>>,
}

impl<S: TraceSink> BufferedSink<S> {
    pub fn new(inner: S) -> Self {
        Self::with_stripes(inner, STRIPES)
    }

    /// A buffer with a custom stripe count (collision-free as long as
    /// `stripes` is at least the number of distinct origins).
    pub fn with_stripes(inner: S, stripes: usize) -> Self {
        Self {
            inner,
            stripes: (0..stripes.max(1))
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// The wrapped sink. Records still buffered are not visible in it until
    /// [`TraceSink::flush`].
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSink> TraceSink for BufferedSink<S> {
    fn record(&self, rec: TraceRecord) {
        let origin = rec.origin;
        let stripe = origin as usize % self.stripes.len();
        let mut full: Option<(u32, Vec<TraceRecord>)> = None;
        {
            let mut runs = self.stripes[stripe].lock();
            let run = MemorySink::run_slot(&mut runs, origin);
            run.push(rec);
            if run.len() >= BUFFER_FLUSH_THRESHOLD {
                full = Some((origin, std::mem::take(run)));
            }
        }
        if let Some((origin, mut batch)) = full {
            self.inner.record_run(origin, &mut batch);
        }
    }

    fn record_batch_owned(&self, recs: &mut Vec<TraceRecord>) {
        for rec in recs.drain(..) {
            self.record(rec);
        }
    }

    fn flush(&self) {
        for stripe in &self.stripes {
            let runs = std::mem::take(&mut *stripe.lock());
            for (origin, mut run) in runs {
                if !run.is_empty() {
                    self.inner.record_run(origin, &mut run);
                }
            }
        }
        self.inner.flush();
    }

    fn flush_origin(&self, origin: u32) {
        // Take only this origin's run out of its stripe; deliver outside the
        // stripe lock. The inner sink is NOT flushed: flush_origin is the
        // hot per-day path (memory delivery), while I/O flushing stays with
        // the run-final full flush().
        let stripe = origin as usize % self.stripes.len();
        let run = {
            let mut runs = self.stripes[stripe].lock();
            let slot = MemorySink::run_slot(&mut runs, origin);
            if slot.is_empty() {
                return;
            }
            std::mem::take(slot)
        };
        let mut run = run;
        self.inner.record_run(origin, &mut run);
    }

    fn io_errors(&self) -> u64 {
        self.inner.io_errors()
    }
}

impl<S: TraceSink> Drop for BufferedSink<S> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Open logfile for one (machine, process): the simulated day it covers
/// and the buffered writer — `None` when opening the day's file failed and
/// the sink is running degraded for that (process, day).
type DayWriter = (u64, Option<BufWriter<File>>);

thread_local! {
    /// Amortized per-thread serialization buffer: one line is formatted
    /// here, outside any writer lock, then written as a single byte slice.
    static LINE_BUF: RefCell<String> = RefCell::new(String::with_capacity(256));
}

/// Writes paper-style logfiles under a directory: one file per
/// (machine, process, day), rotated as simulated days advance. The writer
/// map is striped by (machine, process) so concurrent processes don't
/// contend on one global lock.
///
/// I/O errors do not abort the process: the sink degrades by dropping that
/// (process, day)'s records, counting the failure in
/// [`DirSink::io_errors`] and keeping the first error message in
/// [`DirSink::first_io_error`].
/// One [`DirSink`] stripe: the day-rotated writers of the (machine,
/// process) pairs hashing to it, padded to a cache line.
type WriterStripe = CachePadded<Mutex<HashMap<(MachineId, ProcessId), DayWriter>>>;

pub struct DirSink {
    dir: PathBuf,
    stripes: Vec<WriterStripe>,
    /// Append `o=`/`q=` origin/sequence stamps to every line (see
    /// [`csvline::write_line_stamped`]). Off by default: plain mode emits
    /// the paper's exact logfile schema.
    stamped: bool,
    // Padded: this counter sits next to the stripe array and is bumped on
    // the degraded path while other threads stream through their stripes.
    io_errors: CachePadded<AtomicU64>,
    first_error: Mutex<Option<String>>,
}

impl DirSink {
    /// Creates the directory (and parents) if needed.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::with_stamps(dir, false)
    }

    /// Like [`DirSink::create`], but every line carries its `(origin, seq)`
    /// stamp so the directory can be read back into exact canonical order —
    /// the mode the stream-to-disk pipeline uses.
    pub fn create_stamped(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::with_stamps(dir, true)
    }

    fn with_stamps(dir: impl Into<PathBuf>, stamped: bool) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            stripes: (0..STRIPES)
                .map(|_| CachePadded::new(Mutex::new(HashMap::new())))
                .collect(),
            stamped,
            io_errors: CachePadded::new(AtomicU64::new(0)),
            first_error: Mutex::new(None),
        })
    }

    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Number of failed logfile operations (opens, writes, flushes) since
    /// creation. Each failure degrades (drops) one (process, day) stream;
    /// the next day retries.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Counts one degraded-mode I/O failure and keeps the first message.
    fn note_io_error(&self, msg: impl FnOnce() -> String) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(msg());
        }
    }

    /// The first I/O error observed, if any — enough to diagnose a
    /// misconfigured trace directory without aborting a multi-hour run.
    pub fn first_io_error(&self) -> Option<String> {
        self.first_error.lock().clone()
    }

    fn stripe_of(machine: MachineId, process: ProcessId) -> usize {
        // Fibonacci-hash the (machine, process) pair and take high bits:
        // the old `machine*31 + process % STRIPES` folded the paper's small
        // dense machine/process ids onto a handful of stripes (collisions
        // between concurrent processes serialize their writers). The
        // multiplicative mix spreads dense ids uniformly.
        let key = ((machine.raw() as u64) << 32) | process.raw() as u64;
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 58) as usize % STRIPES
    }

    fn open(&self, machine: MachineId, process: ProcessId, day: u64) -> Option<BufWriter<File>> {
        let path = self
            .dir
            .join(crate::logfile::logfile_name(machine, process, day));
        // Append: a process may be asked to re-open a day's file after a
        // rotation race; losing previously written lines would corrupt the
        // trace.
        match fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(file) => Some(BufWriter::new(file)),
            Err(e) => {
                self.note_io_error(|| format!("open trace logfile {}: {e}", path.display()));
                None
            }
        }
    }

    /// Appends one pre-serialized line (newline included) to the right
    /// (machine, process, day) file.
    fn write_serialized(&self, machine: MachineId, process: ProcessId, day: u64, line: &[u8]) {
        let mut writers = self.stripes[Self::stripe_of(machine, process)].lock();
        let entry = writers.entry((machine, process));
        let slot = match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get().0 != day {
                    // Day changed for this process: flush and rotate, like
                    // the original "one log file per server/service and day".
                    let (_, old) = o.insert((day, self.open(machine, process, day)));
                    if let Some(mut w) = old {
                        // u1-lint: allow(U1L007) — day rotation must retire the old writer before the stripe accepts new lines; the stripe lock is that ordering
                        if let Err(e) = w.flush() {
                            self.note_io_error(|| format!("flush trace logfile: {e}"));
                        }
                    }
                }
                o.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((day, self.open(machine, process, day)))
            }
        };
        if let Some(w) = &mut slot.1 {
            // u1-lint: allow(U1L007) — one serialized line per write under the stripe lock is the log-line atomicity contract (no torn lines across processes)
            if let Err(e) = w.write_all(line) {
                // Degrade exactly like a failed open: count it, drop the
                // writer so the stream goes quiet for the rest of the day
                // instead of emitting torn lines, retry on rotation.
                slot.1 = None;
                self.note_io_error(|| format!("write trace logfile: {e}"));
            }
        }
    }
}

impl DirSink {
    fn write_line_for_mode(&self, rec: &TraceRecord, buf: &mut String) {
        buf.clear();
        let _ = if self.stamped {
            csvline::write_line_stamped(rec, buf)
        } else {
            csvline::write_line(rec, buf)
        };
        buf.push('\n');
    }
}

impl TraceSink for DirSink {
    fn record(&self, rec: TraceRecord) {
        LINE_BUF.with(|b| {
            let mut buf = b.borrow_mut();
            self.write_line_for_mode(&rec, &mut buf);
            self.write_serialized(rec.machine, rec.process, rec.t.day_index(), buf.as_bytes());
        });
    }

    fn record_batch(&self, recs: &[TraceRecord]) {
        LINE_BUF.with(|b| {
            let mut buf = b.borrow_mut();
            for rec in recs {
                self.write_line_for_mode(rec, &mut buf);
                self.write_serialized(rec.machine, rec.process, rec.t.day_index(), buf.as_bytes());
            }
        });
    }

    fn record_batch_owned(&self, recs: &mut Vec<TraceRecord>) {
        self.record_batch(recs);
        recs.clear();
    }

    fn flush(&self) {
        for stripe in &self.stripes {
            for (_, slot) in stripe.lock().iter_mut() {
                if let Some(w) = &mut slot.1 {
                    // u1-lint: allow(U1L007) — flush() drains each stripe under its lock so no line written before the flush call can be missed
                    if let Err(e) = w.flush() {
                        slot.1 = None;
                        self.note_io_error(|| format!("flush trace logfile: {e}"));
                    }
                }
            }
        }
    }

    fn io_errors(&self) -> u64 {
        DirSink::io_errors(self)
    }
}

impl Drop for DirSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Payload, SessionEvent};
    use u1_core::{SessionId, SimTime, UserId};

    fn rec(t_secs: u64, machine: u16, process: u16) -> TraceRecord {
        TraceRecord::new(
            SimTime::from_secs(t_secs),
            MachineId::new(machine),
            ProcessId::new(process),
            Payload::Session {
                event: SessionEvent::Open,
                session: SessionId::new(t_secs),
                user: UserId::new(1),
            },
        )
    }

    fn rec_origin(t_secs: u64, origin: u32, seq: u64) -> TraceRecord {
        let mut r = rec(t_secs, 0, 0);
        r.origin = origin;
        r.seq = seq;
        r
    }

    #[test]
    fn memory_sink_sorts_by_time() {
        let sink = MemorySink::new();
        sink.record(rec(30, 0, 0));
        sink.record(rec(10, 0, 0));
        sink.record(rec(20, 0, 0));
        let recs = sink.take_sorted();
        let times: Vec<u64> = recs.iter().map(|r| r.t.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(sink.is_empty());
    }

    #[test]
    fn memory_sink_merges_origin_runs_into_canonical_order() {
        let sink = MemorySink::new();
        // Three origins, interleaved timestamps; origin 33 shares stripe 1
        // with origin 1, exercising the per-stripe multi-run path.
        for (t, origin, seq) in [
            (5u64, 1u32, 0u64),
            (9, 1, 1),
            (9, 33, 0),
            (12, 33, 1),
            (3, 2, 0),
            (9, 2, 1),
        ] {
            sink.record(rec_origin(t, origin, seq));
        }
        let recs = sink.take_sorted();
        let keys: Vec<(u64, u32, u64)> = recs
            .iter()
            .map(|r| (r.t.as_secs(), r.origin, r.seq))
            .collect();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(keys, expect);
        assert_eq!(recs.len(), 6);
    }

    #[test]
    fn buffered_sink_flush_delivers_everything() {
        let inner = std::sync::Arc::new(MemorySink::new());
        let buffered = BufferedSink::new(std::sync::Arc::clone(&inner));
        for i in 0..100 {
            buffered.record(rec_origin(i, (i % 3) as u32, i));
        }
        assert!(inner.is_empty(), "nothing reaches inner before flush");
        buffered.flush();
        assert_eq!(inner.len(), 100);
    }

    #[test]
    fn buffered_sink_flush_origin_drains_only_that_origin() {
        let inner = std::sync::Arc::new(MemorySink::new());
        let buffered = BufferedSink::new(std::sync::Arc::clone(&inner));
        for i in 0..30u64 {
            buffered.record(rec_origin(i, (i % 3) as u32, i));
        }
        buffered.flush_origin(1);
        assert_eq!(inner.len(), 10, "only origin 1's run is delivered");
        assert!(inner
            .take_sorted()
            .iter()
            .all(|r| r.origin == 1 && r.seq % 3 == 1));
        // Re-flushing a drained origin is a no-op; the full flush delivers
        // the rest.
        buffered.flush_origin(1);
        assert!(inner.is_empty());
        buffered.flush();
        assert_eq!(inner.len(), 20);
        // Same through an `Arc<dyn TraceSink>` (how the driver holds it).
        let shared: std::sync::Arc<dyn TraceSink> =
            std::sync::Arc::new(BufferedSink::new(std::sync::Arc::clone(&inner)));
        let _ = inner.take_sorted();
        shared.record(rec_origin(1, 7, 0));
        shared.flush_origin(7);
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn dir_sink_rotates_per_day_and_process() {
        let dir = std::env::temp_dir().join(format!("u1-trace-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let sink = DirSink::create(&dir).unwrap();
            sink.record(rec(10, 0, 1)); // day 0, proc 1
            sink.record(rec(20, 0, 2)); // day 0, proc 2
            sink.record(rec(86_400 + 5, 0, 1)); // day 1, proc 1
            sink.flush();
            assert_eq!(sink.io_errors(), 0);
            assert_eq!(sink.first_io_error(), None);
        }
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "production-whitecurrant-1-day00.csv",
                "production-whitecurrant-1-day01.csv",
                "production-whitecurrant-2-day00.csv",
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_sink_degrades_on_unopenable_path() {
        // A file where the sink expects a directory: every open fails, but
        // nothing panics and the failure is observable.
        let bogus = std::env::temp_dir().join(format!("u1-trace-bogus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&bogus);
        let sink = DirSink::create(&bogus).unwrap();
        fs::remove_dir_all(&bogus).unwrap();
        fs::write(&bogus, b"not a directory").unwrap();
        sink.record(rec(10, 0, 1));
        sink.record(rec(20, 0, 1)); // same (process, day): no second open
        sink.record(rec(86_400 + 5, 0, 1)); // next day retries and fails again
        sink.flush();
        assert_eq!(sink.io_errors(), 2);
        assert!(sink.first_io_error().is_some());
        // The count is visible through the trait too (how `Driver::run`
        // surfaces it into `DriverReport::trace_io_errors`), including
        // through an `Arc<dyn TraceSink>` and a `BufferedSink` wrapper.
        let shared: std::sync::Arc<dyn TraceSink> = std::sync::Arc::new(sink);
        assert_eq!(TraceSink::io_errors(&shared), 2);
        let buffered = BufferedSink::new(std::sync::Arc::clone(&shared));
        assert_eq!(buffered.io_errors(), 2);
        let memory: std::sync::Arc<dyn TraceSink> = std::sync::Arc::new(MemorySink::new());
        assert_eq!(TraceSink::io_errors(&memory), 0);
        let _ = fs::remove_file(&bogus);
    }

    /// Write and flush failures (not just failed opens) are counted and
    /// degrade the (process, day) stream without panicking. Tests run as
    /// root, where permission tricks don't bite, so the failing device is
    /// `/dev/full`: opens succeed, every flushed byte returns `ENOSPC`.
    #[cfg(unix)]
    #[test]
    fn dir_sink_counts_write_and_flush_failures() {
        if !std::path::Path::new("/dev/full").exists() {
            return; // non-Linux unix: no such device, nothing to test
        }
        let dir = std::env::temp_dir().join(format!("u1-trace-full-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = DirSink::create(&dir).unwrap();
        for proc in [1u16, 2u16] {
            std::os::unix::fs::symlink(
                "/dev/full",
                dir.join(crate::logfile::logfile_name(
                    MachineId::new(0),
                    ProcessId::new(proc),
                    0,
                )),
            )
            .unwrap();
        }
        // Process 1: enough lines to overflow the BufWriter mid-record, so
        // the failure surfaces on the write path itself.
        for i in 0..2_000u64 {
            sink.record(rec(10 + i % 50, 0, 1));
        }
        assert_eq!(sink.io_errors(), 1, "{:?}", sink.first_io_error());
        let first = sink.first_io_error().expect("first error recorded");
        assert!(first.starts_with("write trace logfile"), "was: {first}");
        // The degraded stream goes quiet instead of erroring per record.
        sink.record(rec(11, 0, 1));
        assert_eq!(sink.io_errors(), 1);
        // Process 2: one buffered line; the failure surfaces at flush().
        sink.record(rec(10, 0, 2));
        sink.flush();
        assert_eq!(sink.io_errors(), 2);
        // Both streams degraded; a full-run completion with errors counted
        // is exactly the driver's degraded-mode contract.
        sink.flush();
        assert_eq!(sink.io_errors(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
