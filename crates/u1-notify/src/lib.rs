//! The inter-API-server notification broker (§3.4.2).
//!
//! When two related clients are online and one changes shared state, the
//! API server handling the change must reach the API server holding the
//! other client's TCP connection. U1 used RabbitMQ for this: every API
//! server subscribes to a queue and publishes events that other servers
//! deliver to their connected clients as pushes. Footnote 4 notes the
//! shortcut we also expose: "if connected clients are handled by the same
//! API process, their notifications are sent immediately, i.e. there is no
//! need for inter-process communication with RabbitMQ".
//!
//! The broker is generic over the event type; the server crate publishes
//! its own `VolumeEvent`.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one subscriber (one API server process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(pub u64);

/// Broker delivery counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrokerStats {
    pub published: u64,
    /// Total copies enqueued across subscribers.
    pub delivered: u64,
    /// Publishes that found no remote subscriber.
    pub dropped: u64,
    /// Events lost *before* reaching any queue — the fault-injection plane
    /// models broker outages (RabbitMQ restart, queue overflow) by calling
    /// [`Broker::note_lost`] instead of publishing. Affected clients learn
    /// about the missed change by rescanning at their next session.
    pub lost: u64,
}

/// An in-process message broker standing in for the RabbitMQ server.
pub struct Broker<T: Clone + Send + 'static> {
    subscribers: RwLock<HashMap<SubscriberId, Sender<T>>>,
    next_id: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    lost: AtomicU64,
}

impl<T: Clone + Send + 'static> Default for Broker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + 'static> Broker<T> {
    pub fn new() -> Self {
        Self {
            subscribers: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        }
    }

    /// Subscribes a new consumer (an API server process), returning its id
    /// and the receiving end of its queue.
    pub fn subscribe(&self) -> (SubscriberId, Receiver<T>) {
        let id = SubscriberId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        self.subscribers.write().insert(id, tx);
        (id, rx)
    }

    /// Removes a subscriber (process shutdown).
    pub fn unsubscribe(&self, id: SubscriberId) {
        self.subscribers.write().remove(&id);
    }

    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Publishes an event to every subscriber except `from` (the publishing
    /// process delivers to its own clients directly — the footnote-4
    /// fast path).
    pub fn publish_except(&self, from: Option<SubscriberId>, event: T) {
        self.published.fetch_add(1, Ordering::Relaxed);
        let subs = self.subscribers.read();
        let mut delivered = 0u64;
        for (id, tx) in subs.iter() {
            if Some(*id) == from {
                continue;
            }
            if tx.send(event.clone()).is_ok() {
                delivered += 1;
            }
        }
        if delivered == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.delivered.fetch_add(delivered, Ordering::Relaxed);
    }

    /// Publishes to everyone.
    pub fn publish(&self, event: T) {
        self.publish_except(None, event);
    }

    /// Accounts one event lost in the broker itself (injected fan-out
    /// drop): the publisher decided not to enqueue it anywhere, simulating
    /// a message that died inside RabbitMQ.
    pub fn note_lost(&self) {
        self.lost.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            lost: self.lost.load(Ordering::Relaxed),
        }
    }
}

/// Drains every event currently queued for a subscriber without blocking.
pub fn drain<T>(rx: &Receiver<T>) -> Vec<T> {
    let mut out = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(ev) => out.push(ev),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_all_other_subscribers() {
        let broker: Broker<u32> = Broker::new();
        let (a, rx_a) = broker.subscribe();
        let (_b, rx_b) = broker.subscribe();
        let (_c, rx_c) = broker.subscribe();
        broker.publish_except(Some(a), 42);
        assert_eq!(drain(&rx_a), Vec::<u32>::new(), "publisher skipped");
        assert_eq!(drain(&rx_b), vec![42]);
        assert_eq!(drain(&rx_c), vec![42]);
        let stats = broker.stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker: Broker<u32> = Broker::new();
        let (a, rx_a) = broker.subscribe();
        let (b, rx_b) = broker.subscribe();
        broker.unsubscribe(b);
        broker.publish_except(None, 7);
        assert_eq!(drain(&rx_a), vec![7]);
        assert_eq!(drain(&rx_b), Vec::<u32>::new());
        assert_eq!(broker.subscriber_count(), 1);
        let _ = a;
    }

    #[test]
    fn publish_with_no_receivers_counts_as_dropped() {
        let broker: Broker<u32> = Broker::new();
        let (a, _rx) = broker.subscribe();
        broker.publish_except(Some(a), 1);
        assert_eq!(broker.stats().dropped, 1);
    }

    #[test]
    fn lost_events_are_counted_separately_from_undeliverable_ones() {
        let broker: Broker<u32> = Broker::new();
        let (_a, rx) = broker.subscribe();
        broker.note_lost();
        broker.note_lost();
        broker.publish(9);
        let stats = broker.stats();
        assert_eq!((stats.lost, stats.published, stats.dropped), (2, 1, 0));
        assert_eq!(drain(&rx), vec![9], "lost events never reach queues");
    }

    #[test]
    fn events_queue_until_drained() {
        let broker: Broker<&'static str> = Broker::new();
        let (_a, rx) = broker.subscribe();
        broker.publish("x");
        broker.publish("y");
        broker.publish("z");
        assert_eq!(drain(&rx), vec!["x", "y", "z"]);
        assert_eq!(drain(&rx), Vec::<&str>::new());
    }

    #[test]
    fn concurrent_publish_is_safe() {
        use std::sync::Arc;
        let broker: Arc<Broker<u64>> = Arc::new(Broker::new());
        let (_id, rx) = broker.subscribe();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let b = Arc::clone(&broker);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.publish(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(drain(&rx).len(), 1000);
        assert_eq!(broker.stats().published, 1000);
    }
}
