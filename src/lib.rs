//! `ubuntuone` — a production-quality Rust reproduction of
//! *"Dissecting UbuntuOne: Autopsy of a Global-scale Personal Cloud
//! Back-end"* (Gracia-Tinedo et al., ACM IMC 2015).
//!
//! This facade crate re-exports the workspace so downstream users (and the
//! runnable examples under `examples/`) can depend on one crate:
//!
//! * [`core`] — ids, SHA-1, clocks, file taxonomy, operation vocabulary,
//! * [`proto`] — the U1 storage protocol (wire format, framing, sans-io
//!   connection state machines, TCP transport),
//! * [`metastore`] — the user-sharded metadata store (DAL) with the
//!   calibrated service-time model,
//! * [`blobstore`] — the S3-like object store with multipart uploads and
//!   warm/cold tiering,
//! * [`auth`] — the OAuth-style token service and per-server token cache,
//! * [`notify`] — the RabbitMQ-like notification broker,
//! * [`server`] — the back-end itself (gateway, API handlers, upload state
//!   machine, push fan-out, live TCP front-end),
//! * [`client`] — the desktop client (sync engine over direct or TCP
//!   transports),
//! * [`workload`] — the calibrated synthetic population and the
//!   discrete-event driver,
//! * [`trace`] — the paper-format trace pipeline,
//! * [`analytics`] — the statistics kit and the per-figure analyzers.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` — start a backend, connect a syncing
//! client over TCP, upload, download, push-sync a second device.

pub use u1_analytics as analytics;
pub use u1_auth as auth;
pub use u1_blobstore as blobstore;
pub use u1_client as client;
pub use u1_core as core;
pub use u1_metastore as metastore;
pub use u1_notify as notify;
pub use u1_proto as proto;
pub use u1_server as server;
pub use u1_trace as trace;
pub use u1_workload as workload;
