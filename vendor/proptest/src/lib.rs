//! Offline stand-in for the `proptest` crate (see `vendor/parking_lot` for
//! why these exist). Implements the combinators the workspace's property
//! tests use — `any`, ranges, `Just`, tuples, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `option::of`, string patterns — over a deterministic
//! seeded generator. No shrinking: a failing case panics with the standard
//! assert message, which is enough for CI triage at this scale, and every
//! run is reproducible because the seed is fixed per test name.

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-block configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Derives a per-test seed from the test's name, so each property gets
    /// an independent, stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A value generator. `generate` replaces the real crate's `new_tree` +
/// simplification machinery.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: std::rc::Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy, the unifier behind `prop_oneof!`.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: std::rc::Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// `s.prop_map(f)`.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for MapStrategy<S, F> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `s.prop_flat_map(f)`.
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for FlatMapStrategy<S, F> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    pub alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            alternatives: self.alternatives.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let idx = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// `any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        Self(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + rng.below(span) as u128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// String patterns act as generators, like the real crate's regex
/// strategies. Supported shape: an optional literal prefix followed by
/// `.{min,max}` (e.g. `".{0,40}"`); anything else yields the pattern text's
/// literal characters. That covers the workspace's usage without dragging
/// in a regex engine.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((prefix, min, max)) = parse_dot_repeat(self) {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let mut s = String::from(prefix);
            for _ in 0..len {
                // Mix ASCII with occasional multi-byte chars so UTF-8
                // handling in codecs actually gets exercised.
                let c = match rng.below(8) {
                    0 => 'ü',
                    1 => '√',
                    _ => (b' ' + rng.below(95) as u8) as char,
                };
                s.push(c);
            }
            s
        } else {
            (*self).to_string()
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(&str, usize, usize)> {
    let open = pattern.find(".{")?;
    let rest = &pattern[open + 2..];
    let close = rest.find('}')?;
    let (min_s, max_s) = rest[..close].split_once(',')?;
    Some((
        &pattern[..open],
        min_s.trim().parse().ok()?,
        max_s.trim().parse().ok()?,
    ))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            Self {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `of(inner)`: `None` about a quarter of the time, like the real crate.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union {
            alternatives: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The harness macro: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` that runs `body` against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident ($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                // Bind each strategy once, named after its argument, then
                // shadow with the generated value inside the loop.
                $(let $arg = $strategy;)*
                let __strategies = ($(&$arg,)*);
                for __case in 0..config.cases {
                    let ($($arg,)*) = __strategies;
                    $(let $arg = $crate::Strategy::generate($arg, &mut rng);)*
                    // The closure lets test bodies `return Ok(())` early,
                    // matching the real crate's TestCaseResult convention.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), String> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!("proptest case {} failed: {}", __case, message);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::new(1);
        let strat = (1u16..10, any::<bool>()).prop_map(|(n, b)| if b { n * 2 } else { n });
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((1..20).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let mut rng = TestRng::new(2);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = TestRng::new(3);
        let strat: &'static str = ".{0,40}";
        for _ in 0..500 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::new(4);
        let strat = collection::vec(any::<u8>(), 1..8);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_compiles_and_runs(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
