//! Offline stand-in for the `serde` crate (see `vendor/parking_lot` for why
//! these exist). The workspace only ever serializes — derived types flow
//! into `serde_json::json!` and `serde_json::to_string_pretty` — so this
//! stub models serialization as direct conversion to a JSON [`Value`] tree:
//! `Serialize` is "can become a `Value`", and `Deserialize` is a marker so
//! existing `#[derive(Deserialize)]` attributes keep compiling.
//!
//! The derive macro lives in `vendor/serde_derive` and generates
//! `impl Serialize` blocks against the types here; `serde_json` re-exports
//! [`Value`]/[`Map`] and adds the `json!` macro and writers.

use std::collections::{BTreeMap, HashMap};

mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Conversion into a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker: the real crate's `Deserialize` has no offline consumer (nothing
/// in the workspace deserializes), so derives reduce to this.
pub trait Deserialize: Sized {}

/// Free-function form used by derive-generated code and `json!`.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Map keys must become JSON strings; numbers use their display form, the
/// convention the real serde_json applies to integer-keyed maps.
pub trait SerializeKey {
    fn to_key(&self) -> String;
}

macro_rules! impl_key_display {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_key_display!(String, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char);

impl SerializeKey for str {
    fn to_key(&self) -> String {
        self.to_string()
    }
}

impl<T: SerializeKey + ?Sized> SerializeKey for &T {
    fn to_key(&self) -> String {
        (**self).to_key()
    }
}

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output — HashMap iteration order is not.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k, v);
        }
        Value::Object(map)
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_key(), v.to_value());
        }
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(7u64.to_value(), Value::Number(Number::U64(7)));
        assert_eq!((-3i32).to_value(), Value::Number(Number::I64(-3)));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        let arr = vec![1u8, 2].to_value();
        assert_eq!(
            arr,
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::Number(Number::U64(2))
            ])
        );
        let pair = ("k", 1u64).to_value();
        assert!(matches!(pair, Value::Array(ref v) if v.len() == 2));
    }

    #[test]
    fn maps_serialize_deterministically() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        if let Value::Object(obj) = v {
            let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["a", "b"]);
        } else {
            panic!("expected object");
        }
    }
}
