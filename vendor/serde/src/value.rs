//! The JSON value tree shared by the `serde` and `serde_json` stubs.

/// A JSON number. Kept as three variants so `u64` sizes and counters —
/// ubiquitous in the trace model — print exactly, never through `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

/// Floats compare by bit pattern so `NaN == NaN` and `0.0 != -0.0`: value
/// trees are compared in differential tests that demand bit-identical
/// output, where IEEE `NaN != NaN` semantics would make any report with an
/// empty-bin NaN unequal to itself.
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::I64(i)) => Some(*i as f64),
            Value::Number(Number::U64(u)) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(u)) => Some(*u),
            Value::Number(Number::I64(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(i)) => Some(*i),
            Value::Number(Number::U64(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`value.get("key")`), `Null` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A JSON object preserving insertion order, like serde_json with its
/// `preserve_order` feature — experiment output stays in authoring order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts, replacing in place (keeping the original position) when the
    /// key already exists. Returns the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for entry in &mut self.entries {
            if entry.0 == key {
                return Some(std::mem::replace(&mut entry.1, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces_in_place() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Null);
        m.insert("a".into(), Value::Bool(true));
        m.insert("z".into(), Value::Bool(false));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.get("z"), Some(&Value::Bool(false)));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Number(Number::U64(u64::MAX));
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.as_i64(), None);
        assert!(Value::Null.is_null());
    }
}
