//! Offline stand-in for the `bytes` crate (see `vendor/parking_lot` for why
//! these exist). Implements the subset the protocol stack uses: `BytesMut`
//! as a growable byte buffer with an advancing read head, `Bytes` as an
//! immutable view, and the `Buf`/`BufMut` traits for cursor-style reads and
//! appends. No refcounted zero-copy splitting — `split_to`/`freeze` copy —
//! which is fine at the reproduction's message sizes.

use std::ops::{Deref, Index};

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(
            self.remaining() >= dest.len(),
            "copy_to_slice out of bounds"
        );
        let mut filled = 0;
        while filled < dest.len() {
            let chunk = self.chunk();
            let take = chunk.len().min(dest.len() - filled);
            dest[filled..filled + take].copy_from_slice(&chunk[..take]);
            self.advance(take);
            filled += take;
        }
    }
}

/// Append-only writer over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer with an advancing read head.
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read head: everything before this offset has been consumed.
    head: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_large();
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        self.compact_if_large();
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: if self.head == 0 {
                self.data
            } else {
                self.data[self.head..].to_vec()
            },
            head: 0,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.as_slice().iter()
    }

    /// Drops the consumed prefix when it dominates the allocation, keeping
    /// the buffer from growing without bound under streaming use.
    fn compact_if_large(&mut self) {
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.head += cnt;
        self.compact_if_large();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, idx: usize) -> &u8 {
        &self.as_slice()[idx]
    }
}

impl std::ops::IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, idx: usize) -> &mut u8 {
        let at = self.head + idx;
        &mut self.data[at]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl<'a> IntoIterator for &'a BytesMut {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Immutable byte buffer with an advancing read head.
#[derive(Default, Clone)]
pub struct Bytes {
    data: Vec<u8>,
    head: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            head: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.as_slice().iter()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.head += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Index<usize> for Bytes {
    type Output = u8;
    fn index(&self, idx: usize) -> &u8 {
        &self.as_slice()[idx]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, head: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self::copy_from_slice(src)
    }
}

impl From<&'static str> for Bytes {
    fn from(src: &'static str) -> Self {
        Self::copy_from_slice(src.as_bytes())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn split_to_and_freeze() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let hello = b.split_to(5);
        assert_eq!(hello.as_slice(), b"hello");
        b.advance(1);
        assert_eq!(b.freeze().as_slice(), b"world");
    }

    #[test]
    fn slice_buf_cursor() {
        let mut cur = &b"abc"[..];
        assert_eq!(cur.get_u8(), b'a');
        assert_eq!(cur.remaining(), 2);
        cur.advance(2);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn streaming_use_compacts_consumed_prefix() {
        let mut b = BytesMut::new();
        for round in 0..1000u32 {
            b.extend_from_slice(&[round as u8; 64]);
            b.advance(64);
            assert!(b.is_empty());
        }
        // The consumed prefix must not accumulate forever.
        assert!(b.data.len() < 16 * 1024);
    }
}
