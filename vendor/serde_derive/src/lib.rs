//! Offline stand-in for `serde_derive` (see `vendor/parking_lot` for why
//! these exist). `syn`/`quote` are not available offline, so the item is
//! parsed directly from the `proc_macro` token stream. That is tractable
//! because the grammar needed is small: non-generic structs (named, tuple,
//! unit) and enums (unit, tuple, struct variants) — exactly the shapes the
//! workspace derives on. Generic items get a clear compile error.
//!
//! `Serialize` derives generate `to_value` conversions into the `serde`
//! stub's `Value` tree, externally tagged for enums like the real serde.
//! `Deserialize` derives generate the marker impl only (nothing in the
//! workspace deserializes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match which {
            Trait::Serialize => gen_serialize(&item),
            Trait::Deserialize => format!("impl ::serde::Deserialize for {} {{}}", item.name),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive stub: {e:?}\");")
            .parse()
            .unwrap()
    })
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// A token cursor with the few lookahead helpers the item grammar needs.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips attributes (`#[...]`, which is also how doc comments arrive)
    /// and visibility (`pub`, `pub(...)`).
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        self.next();
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.next();
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        self.next();
                    }
                }
                _ => return,
            }
        }
    }

    /// Consumes tokens until a top-level comma (angle-bracket depth 0),
    /// leaving the comma unconsumed. Groups are atomic in proc_macro
    /// streams, so only `<`/`>` need depth tracking; `->` is recognized so
    /// its `>` does not close an angle bracket.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        return;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' && !prev_dash {
                        angle -= 1;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            self.next();
        }
    }
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs_and_vis();

    let kw = cur
        .next()
        .and_then(|t| ident_text(&t))
        .ok_or_else(|| "expected `struct` or `enum`".to_string())?;
    let name = cur
        .next()
        .and_then(|t| ident_text(&t))
        .ok_or_else(|| "expected item name".to_string())?;

    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub cannot derive for generic type `{name}`; write the impl by hand"
        ));
    }
    if matches!(cur.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!(
            "serde stub cannot derive for `{name}` with a where-clause; write the impl by hand"
        ));
    }

    match kw.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Struct(Fields::Named(parse_named_fields(g.stream())?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream()))),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::Struct(Fields::Unit),
            }),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let Some(tok) = cur.next() else { break };
        let field = ident_text(&tok).ok_or_else(|| "expected field name".to_string())?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        fields.push(field);
        cur.skip_until_comma();
        cur.next(); // consume the comma, if any
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    loop {
        cur.skip_attrs_and_vis();
        if cur.peek().is_none() {
            return count;
        }
        count += 1;
        cur.skip_until_comma();
        cur.next();
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let Some(tok) = cur.next() else { break };
        let name = ident_text(&tok).ok_or_else(|| "expected variant name".to_string())?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                cur.next();
                Fields::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                cur.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        cur.skip_until_comma();
        cur.next();
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

/// Key text for a field: raw identifiers serialize without the `r#`.
fn key_of(field: &str) -> &str {
    field.strip_prefix("r#").unwrap_or(field)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{}\"), ::serde::to_value(&self.{f}));\n",
                    key_of(f)
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __fields = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.insert(::std::string::String::from(\"{}\"), ::serde::to_value({f}));\n",
                                key_of(f)
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__fields));\n\
                             ::serde::Value::Object(__m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}
