//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are vendored as minimal local crates
//! exposing exactly the API surface the workspace uses. This one wraps
//! `std::sync` primitives with parking_lot's non-poisoning lock API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s,
//! and a panicked holder does not poison the lock for everyone else.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
