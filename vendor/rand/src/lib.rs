//! Offline stand-in for the `rand` crate (see `vendor/parking_lot` for why
//! these exist). Provides the subset the workspace uses: `SmallRng` seeded
//! via `SeedableRng::seed_from_u64` and `Rng::gen_range` over half-open and
//! inclusive ranges of the primitive integer and float types.
//!
//! The generator is xoshiro256** with a SplitMix64 seeding sequence — the
//! same family the real `SmallRng` uses on 64-bit targets. Streams are
//! deterministic per seed, which is all the reproduction's experiment
//! pipeline requires (it never depends on matching the real crate's exact
//! stream).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from. The single generic impl
/// per range shape (rather than one impl per primitive) is what lets type
/// inference flow from the range literal to `T`, as in the real crate.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitives that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! impl_uint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as u128).wrapping_sub(start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_uint_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and statistically solid; the family the
    /// real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
