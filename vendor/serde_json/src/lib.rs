//! Offline stand-in for the `serde_json` crate (see `vendor/parking_lot`
//! for why these exist). [`Value`] and [`Map`] live in the `serde` stub
//! (derive-generated code references them there) and are re-exported here
//! under their familiar paths, alongside the `json!` macro — a tt-muncher
//! modeled on the real one — and the compact/pretty writers.

pub use serde::{to_value, Map, Number, Value};

/// Serialization error. The stub's writers cannot actually fail (they write
/// to strings), but the `Result` return keeps call sites source-compatible.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Compact JSON encoding.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON encoding (2-space indent, like the real crate).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Number::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Number::F64(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity; the real crate emits null.
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-shaped syntax with interpolated Rust
/// expressions, mirroring the real `json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`] — a tt-muncher: `@array` accumulates
/// elements, `@object` munches `"key": value` pairs token by token so that
/// nested `{...}`/`[...]` literals (which are not Rust expressions) work in
/// value position.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- arrays ----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects: insert a finished key/value pair ----
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };

    // ---- objects: munch a value in `key: value` position ----
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // ---- objects: done ----
    (@object $object:ident () () ()) => {};

    // ---- objects: munch key tokens until the `:` ----
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($copy));
    };

    // ---- entry points ----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 3u64;
        let v = json!({
            "null": null,
            "flag": true,
            "num": n,
            "calc": n as f64 / 2.0,
            "nested": {"a": [1, 2, {"deep": "yes"}], "b": []},
            "list": [n, n + 1],
            "interp": (0..2).map(|i| json!([i, i * 10])).collect::<Vec<_>>(),
        });
        let obj = v.as_object().expect("object");
        assert!(obj.get("null").expect("null key").is_null());
        assert_eq!(obj.get("num").and_then(Value::as_u64), Some(3));
        assert_eq!(obj.get("calc").and_then(Value::as_f64), Some(1.5));
        let nested = obj
            .get("nested")
            .and_then(Value::as_object)
            .expect("nested");
        assert_eq!(
            nested.get("a").and_then(Value::as_array).map(Vec::len),
            Some(3)
        );
        assert_eq!(
            obj.get("interp").and_then(Value::as_array).map(Vec::len),
            Some(2)
        );
    }

    #[test]
    fn compact_and_pretty_output() {
        let v = json!({"a": 1, "s": "x\"y", "f": 2.0, "arr": [true, null]});
        assert_eq!(
            to_string(&v).expect("compact"),
            r#"{"a":1,"s":"x\"y","f":2.0,"arr":[true,null]}"#
        );
        let pretty = to_string_pretty(&v).expect("pretty");
        assert!(pretty.contains("\n  \"a\": 1,"), "got: {pretty}");
    }

    #[test]
    fn big_u64_prints_exactly() {
        let v = json!({"n": u64::MAX});
        assert_eq!(to_string(&v).expect("s"), format!("{{\"n\":{}}}", u64::MAX));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&json!(f64::NAN)).expect("s"), "null");
    }
}
