//! Offline stand-in for the `crossbeam` crate (see `vendor/parking_lot` for
//! why these exist). Only the `channel` module is provided: an unbounded
//! MPMC channel built from `std::sync::mpsc` with the receiver behind a
//! mutex so it can be cloned and shared the way crossbeam's can.

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};
    pub use std::sync::mpsc::{RecvTimeoutError, SendError as TrySendError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)?;
            self.queued.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    /// Receiving half of an unbounded channel. Clonable (MPMC): clones share
    /// one underlying queue, so each message is delivered to exactly one
    /// receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let value = self.lock().recv()?;
            self.queued.fetch_sub(1, Ordering::SeqCst);
            Ok(value)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let value = self.lock().try_recv()?;
            self.queued.fetch_sub(1, Ordering::SeqCst);
            Ok(value)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let value = self.lock().recv_timeout(timeout)?;
            self.queued.fetch_sub(1, Ordering::SeqCst);
            Ok(value)
        }

        /// Messages currently queued. Approximate under concurrency, exact
        /// when the channel is quiescent — which is how tests use it.
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::SeqCst)
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Iterator over currently queued messages (never blocks).
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                queued: Arc::clone(&queued),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
                queued,
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.len(), 1);
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(rx.is_empty());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_receivers_compete_for_messages() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }
    }
}
