//! Offline stand-in for the `criterion` crate (see `vendor/parking_lot` for
//! why these exist). Same builder/group/bencher surface; measurement is a
//! plain wall-clock loop — warm-up, then `sample_size` timed samples —
//! reporting median ns/iter and derived throughput to stdout. No HTML
//! reports, outlier analysis, or statistical regression testing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; scales the reported rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing hint for `iter_batched`; the stub's calibration loop treats
/// every variant the same (it only bounds how many setups are pre-built).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Parameter label for `bench_with_input`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// From the real crate's CLI handling; accepted and ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_benchmark(name, None, sample_size, measurement_time, warm_up_time, f);
        self
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks sharing throughput/timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.criterion.warm_up_time,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.criterion.warm_up_time,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Hands the closure-under-test to the timing loop.
pub struct Bencher {
    /// ns/iter for the current sample, set by `iter`.
    sample_ns: f64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate an iteration count big enough to out-run timer noise.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 24 {
                self.sample_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 4;
        }
    }

    /// `iter` with per-iteration setup excluded from the timed region.
    /// Outputs are dropped after the clock stops, like the real crate.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Lower iteration cap than `iter`: each calibration step holds
        // `iters` pre-built inputs in memory at once.
        let mut iters: u64 = 1;
        loop {
            let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let mut outputs = Vec::with_capacity(inputs.len());
            let start = Instant::now();
            for input in inputs.drain(..) {
                outputs.push(black_box(routine(input)));
            }
            let elapsed = start.elapsed();
            drop(outputs);
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 12 {
                self.sample_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 4;
        }
    }
}

/// CLI filtering like the real crate: any non-flag argument is a substring
/// filter, and a benchmark runs when no filter is given or any matches.
fn name_matches_filter(name: &str) -> bool {
    static FILTERS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    let filters = FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    });
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

fn run_benchmark(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    if !name_matches_filter(name) {
        return;
    }
    let mut bencher = Bencher { sample_ns: 0.0 };

    let warm_up_end = Instant::now() + warm_up_time;
    while Instant::now() < warm_up_end {
        f(&mut bencher);
    }

    let mut samples = Vec::with_capacity(sample_size);
    let deadline = Instant::now() + measurement_time;
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.sample_ns);
        if Instant::now() > deadline && samples.len() >= 5 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / median * 1e9),
    });
    println!(
        "{name:<50} {median:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group: `criterion_group!{name = n; config = c; targets = a, b}`
/// or the positional `criterion_group!(n, a, b)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter(1024), &1024usize, |b, n| {
            b.iter(|| (0..*n).sum::<usize>())
        });
        g.bench_function("sum", |b| b.iter(|| (0..100).sum::<u32>()));
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        targets = sample_bench
    }

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
