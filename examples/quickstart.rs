//! Quickstart: bring up a real U1 back-end on a TCP socket, connect a
//! desktop client, sync files up and down, and watch a second device get
//! push-notified — the §3.2 workflow of the paper, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use ubuntuone::client::{LocalEvent, SyncEngine, TcpTransport};
use ubuntuone::core::{RealClock, Sha1, UserId};
use ubuntuone::server::{tcpserver::TcpServer, Backend, BackendConfig};
use ubuntuone::trace::MemorySink;

fn main() {
    // 1. The back-end: metadata store (10 shards), object store, auth
    //    service, notification broker — all behind one TCP gateway.
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig {
            auth: ubuntuone::auth::AuthConfig {
                transient_failure_rate: 0.0, // keep the demo deterministic
                token_ttl: None,
            },
            store_real_bytes: true, // live mode: keep actual bytes
            ..Default::default()
        },
        Arc::new(RealClock::new()),
        sink.clone(),
    ));
    let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("bind");
    println!("U1 back-end listening on {}", server.local_addr());

    // 2. Provision an account (credentials -> OAuth token, §3.4.1).
    let token = backend.register_user(UserId::new(1));

    // 3. First device connects and syncs a local file up.
    let mut device1 = SyncEngine::new(TcpTransport::connect(server.local_addr()).expect("connect"));
    device1.connect(token).expect("authenticate");
    let root = device1.root_volume().expect("root volume");
    println!("device1 session {:?}, root volume {root}", device1.session);

    let content = b"the pool on the roof must have a leak".to_vec();
    let hash = Sha1::digest(&content);
    device1
        .handle_local_event(
            root,
            LocalEvent::FileWritten {
                name: "notes.txt".into(),
                parent: None,
                hash,
                size: content.len() as u64,
            },
        )
        .expect("sync up");
    println!(
        "device1 uploaded notes.txt ({} bytes, sha1 {})",
        content.len(),
        hash
    );

    // 4. Second device of the same user connects: it catches up via
    //    GetDelta and downloads the file.
    let mut device2 = SyncEngine::new(TcpTransport::connect(server.local_addr()).expect("connect"));
    device2.connect(token).expect("authenticate");
    let mirrored = device2
        .volume(root)
        .and_then(|v| v.find_by_name(None, "notes.txt"))
        .expect("file mirrored on device2");
    println!(
        "device2 mirrored notes.txt: node {}, {} bytes downloaded",
        mirrored.node, device2.stats.bytes_downloaded
    );
    assert_eq!(mirrored.hash, Some(hash));

    // 5. device1 edits the file; device2 learns by push over its open TCP
    //    connection (§3.4.2) — no polling.
    let edited = b"the pool on the roof must have a leak -- fixed".to_vec();
    let new_hash = Sha1::digest(&edited);
    device1
        .handle_local_event(
            root,
            LocalEvent::FileWritten {
                name: "notes.txt".into(),
                parent: None,
                hash: new_hash,
                size: edited.len() as u64,
            },
        )
        .expect("sync update");
    // Give the push a moment to traverse broker + TCP.
    for _ in 0..50 {
        std::thread::sleep(std::time::Duration::from_millis(20));
        device2.handle_pushes().expect("handle pushes");
        let hash_now = device2
            .volume(root)
            .and_then(|v| v.find_by_name(None, "notes.txt"))
            .and_then(|f| f.hash);
        if hash_now == Some(new_hash) {
            break;
        }
    }
    let final_hash = device2
        .volume(root)
        .and_then(|v| v.find_by_name(None, "notes.txt"))
        .and_then(|f| f.hash);
    assert_eq!(final_hash, Some(new_hash), "push-sync converged");
    println!(
        "device2 received push and re-synced ({} pushes handled)",
        device2.stats.pushes_handled
    );

    // 6. The whole exchange was traced in the paper's vocabulary.
    device1.disconnect();
    device2.disconnect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let records = sink.take_sorted();
    println!("\ntrace: {} records; first few:", records.len());
    for rec in records.iter().take(8) {
        println!("  {}", ubuntuone::trace::csvline::to_line(rec));
    }
    server.shutdown();
    println!("\nquickstart complete ✔");
}
