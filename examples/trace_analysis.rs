//! The measurement pipeline end-to-end, exactly as §4 describes it:
//! simulate a week of back-end activity, write paper-format logfiles
//! (`production-<machine>-<proc>-dayNN.csv`), read the directory back with
//! malformed-line tolerance, merge by timestamp, anonymize, and run the
//! §5–§7 analyses on the result.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use std::sync::Arc;
use ubuntuone::analytics as ana;
use ubuntuone::core::{ApiOpKind, SimClock, SimTime};
use ubuntuone::server::{Backend, BackendConfig};
use ubuntuone::trace::{Anonymizer, DirSink, LogDirReader};
use ubuntuone::workload::{Driver, WorkloadConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("u1-trace-{}", std::process::id()));
    println!("writing trace logfiles to {}", dir.display());

    // 1. Simulate one week, logging straight to paper-style logfiles.
    let clock = SimClock::new();
    let sink = Arc::new(DirSink::create(&dir).expect("create log dir"));
    let backend = Arc::new(Backend::new(
        BackendConfig::default(),
        Arc::new(clock.clone()),
        sink,
    ));
    let cfg = WorkloadConfig {
        users: 800,
        days: 7,
        seed: 42,
        attacks: false,
        seed_files: 1.0,
        workers: 0,
    };
    let horizon = cfg.horizon();
    let report = Driver::new(cfg, Arc::clone(&backend), clock).run();
    println!(
        "simulated: {} sessions, {} ops, {} uploads / {} downloads",
        report.sessions_opened, report.ops_executed, report.uploads, report.downloads
    );

    // 2. Read the logfile directory back (the paper tolerated ~1%
    //    unparseable lines; the reader counts and skips them).
    let (mut records, stats) = LogDirReader::new(&dir).read_all().expect("read logs");
    println!(
        "parsed {} files, {} lines ({} malformed, {:.2}%)",
        stats.files,
        stats.lines,
        stats.malformed,
        stats.malformed_fraction() * 100.0
    );

    // 3. Anonymize, as Canonical did before releasing the dataset.
    Anonymizer::new(0xC0FFEE).anonymize_all(&mut records);

    // 4. Analyze.
    let summary = ana::summary::trace_summary(&records, horizon);
    println!(
        "\nTable-3-style summary: {} users, {} files, {} sessions, {} transfer ops",
        summary.unique_users, summary.unique_files, summary.sessions, summary.transfer_ops
    );

    let mix = ana::users::op_mix(&records);
    println!("\ntop operations:");
    for (name, count) in mix.counts.iter().take(8) {
        println!("  {name:<16} {count:>8}");
    }

    let dedup = ana::dedup::dedup_analysis(&records);
    println!(
        "\ndedup ratio {:.3} over {} uploads of {} distinct contents",
        dedup.dedup_ratio, dedup.total_uploads, dedup.unique_contents
    );

    let sessions = ana::sessions::session_analysis(&records);
    println!(
        "sessions: {:.1}% under 1s, {:.1}% under 8h, {:.1}% active",
        sessions.under_1s * 100.0,
        sessions.under_8h * 100.0,
        sessions.active_fraction * 100.0
    );

    let burst = ana::burstiness::burstiness(&records, ApiOpKind::Upload);
    println!(
        "upload inter-op times: CV {:.1} (bursty, non-Poisson){}",
        burst.cv,
        burst
            .fit
            .map(|f| format!(
                "; power-law fit alpha {:.2}, theta {:.0}s",
                f.alpha, f.theta
            ))
            .unwrap_or_default()
    );

    let lb = ana::rpc::load_balance(&records, horizon, 6, 10, 60);
    println!(
        "load balance: API hourly CV {:.2}; shard long-run imbalance {:.1}%",
        lb.api_mean_cv,
        lb.shard_longrun_cv * 100.0
    );

    // Keep the artifacts around for inspection.
    println!("\nlogfiles retained at {} — sample lines:", dir.display());
    if let Some(entry) = std::fs::read_dir(&dir).ok().and_then(|mut d| d.next()) {
        let path = entry.expect("entry").path();
        let body = std::fs::read_to_string(&path).unwrap_or_default();
        for line in body.lines().take(4) {
            println!("  {line}");
        }
    }
    let _ = SimTime::ZERO; // silence potential unused import on some configs
}
