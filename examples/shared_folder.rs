//! Shared-folder collaboration (§3.2's synchronization workflow): Alice
//! shares a folder with Bob; changes propagate by push through the
//! notification broker; Bob's deletion syncs back to Alice; identical
//! content between the two users is deduplicated server-side.
//!
//! ```text
//! cargo run --example shared_folder
//! ```

use std::sync::Arc;
use ubuntuone::client::{DirectTransport, LocalEvent, SyncEngine, Transport};
use ubuntuone::core::{ContentHash, SimClock, UserId};
use ubuntuone::server::{Backend, BackendConfig};
use ubuntuone::trace::MemorySink;

fn main() {
    let backend = Arc::new(Backend::new(
        BackendConfig {
            auth: ubuntuone::auth::AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            ..Default::default()
        },
        Arc::new(SimClock::new()),
        Arc::new(MemorySink::new()),
    ));

    let alice_token = backend.register_user(UserId::new(1));
    let bob_token = backend.register_user(UserId::new(2));

    let mut alice = SyncEngine::new(DirectTransport::new(Arc::clone(&backend)));
    let mut bob = SyncEngine::new(DirectTransport::new(Arc::clone(&backend)));
    alice.connect(alice_token).expect("alice connects");
    bob.connect(bob_token).expect("bob connects");

    // Alice creates a UDF and shares it with Bob.
    let project = alice
        .transport()
        .create_udf("paper-draft")
        .expect("create UDF");
    backend
        .create_share(UserId::new(1), project.volume, UserId::new(2))
        .expect("share grant");
    println!("alice shared volume {} with bob", project.volume);

    // Bob sees the share arrive as a push.
    bob.handle_pushes().expect("bob sees VolumeCreated");
    let shares = bob.transport().list_shares().expect("list shares");
    assert_eq!(shares.len(), 1);
    println!(
        "bob's ListShares: volume {} owned by {:?}",
        shares[0].volume, shares[0].owner
    );

    // Alice drops a draft in; Bob gets pushed, fetches the delta, downloads.
    let hash = ContentHash::from_content_id(2015);
    alice
        .handle_local_event(
            project.volume,
            LocalEvent::FileWritten {
                name: "intro.tex".into(),
                parent: None,
                hash,
                size: 48_000,
            },
        )
        .expect("alice uploads");
    backend.pump_broker();
    bob.handle_pushes().expect("bob syncs");
    let bobs_copy = bob
        .volume(project.volume)
        .and_then(|v| v.find_by_name(None, "intro.tex"))
        .expect("bob has the draft")
        .clone();
    println!(
        "bob mirrored intro.tex (node {}, {} bytes downloaded)",
        bobs_copy.node, bob.stats.bytes_downloaded
    );

    // Bob re-uploads the same bytes into his own root — the server
    // deduplicates across users (§3.3): zero bytes travel.
    let bob_root = bob.root_volume().expect("bob root");
    bob.handle_local_event(
        bob_root,
        LocalEvent::FileWritten {
            name: "intro-copy.tex".into(),
            parent: None,
            hash,
            size: 48_000,
        },
    )
    .expect("bob re-uploads");
    assert_eq!(bob.stats.uploads_deduplicated, 1);
    println!(
        "bob's re-upload was deduplicated (bytes sent: {})",
        bob.stats.bytes_uploaded
    );

    // Bob deletes the shared draft; the tombstone pushes back to Alice.
    let node = bobs_copy.node;
    bob.handle_local_event(project.volume, LocalEvent::Removed { node })
        .expect("bob deletes");
    backend.pump_broker();
    alice.handle_pushes().expect("alice syncs the deletion");
    assert!(alice
        .volume(project.volume)
        .and_then(|v| v.find_by_name(None, "intro.tex"))
        .is_none());
    println!("alice saw the deletion propagate back ✔");

    let (local, remote, unroutable) = backend.push_router.stats();
    println!("push routing: {local} same-process, {remote} via broker, {unroutable} unroutable");
    println!("store dedup ratio: {:.3}", backend.store.dedup_ratio());
}
