//! Capacity planning with the simulator: the kind of what-if analysis the
//! paper's §9 motivates. Sweeps the metadata-cluster shard count and
//! reports load balance and RPC latency, then prices the object store with
//! and without the suggested warm/cold tiering.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use std::sync::Arc;
use ubuntuone::analytics as ana;
use ubuntuone::blobstore::{tier, TierPolicy};
use ubuntuone::core::SimClock;
use ubuntuone::metastore::StoreConfig;
use ubuntuone::server::{Backend, BackendConfig};
use ubuntuone::trace::MemorySink;
use ubuntuone::workload::{Driver, WorkloadConfig};

fn run_with_shards(shards: u16) -> (f64, f64, f64) {
    let clock = SimClock::new();
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig {
            store: StoreConfig {
                shards,
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::new(clock.clone()),
        sink.clone(),
    ));
    let cfg = WorkloadConfig {
        users: 600,
        days: 5,
        seed: 7,
        attacks: false,
        seed_files: 1.0,
        workers: 0,
    };
    let horizon = cfg.horizon();
    Driver::new(cfg, Arc::clone(&backend), clock).run();
    let records = sink.take_sorted();
    let lb = ana::rpc::load_balance(&records, horizon, 6, shards as usize, 60);
    let rpc = ana::rpc::rpc_analysis(&records);
    let read_median = rpc.class_median(ubuntuone::core::RpcClass::Read);
    (lb.shard_mean_cv, lb.shard_longrun_cv, read_median)
}

fn main() {
    println!("metadata cluster sweep (600 users, 5 days each):");
    println!("shards   short-window CV   long-run imbalance   read median");
    for shards in [2u16, 5, 10, 20] {
        let (short_cv, long_cv, read_median) = run_with_shards(shards);
        println!(
            "{shards:>6}   {short_cv:>15.2}   {:>17.1}%   {:>9.2}ms",
            long_cv * 100.0,
            read_median * 1000.0
        );
    }
    println!(
        "\nreading: more shards spread the long-run load, but the user-per-shard\n\
         model keeps short windows unbalanced regardless — the paper's Fig. 14\n\
         observation (skewed, bursty users + session pinning)."
    );

    // Object-store pricing with the §9 warm/cold suggestion.
    let clock = SimClock::new();
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig::default(),
        Arc::new(clock.clone()),
        sink,
    ));
    let cfg = WorkloadConfig {
        users: 600,
        days: 30,
        seed: 11,
        attacks: false,
        seed_files: 1.0,
        workers: 0,
    };
    let horizon = cfg.horizon();
    Driver::new(cfg, Arc::clone(&backend), clock).run();
    let policy = TierPolicy::default();
    let sweep = tier::tier_sweep(&backend.blobs, &policy, horizon);
    let flat = sweep.monthly_cost_flat(&policy);
    let tiered = sweep.monthly_cost(&policy);
    println!("\nobject-store tiering after one month:");
    println!(
        "  hot {} / warm {} / cold {} objects",
        sweep.hot_objects, sweep.warm_objects, sweep.cold_objects
    );
    println!(
        "  flat bill ${flat:.2}/month vs tiered ${tiered:.2}/month → {:.1}% saved",
        (1.0 - tiered / flat.max(f64::MIN_POSITIVE)) * 100.0
    );
    println!(
        "  (U1's real bill was ≈ $20,000/month on S3; §9 argues exactly this\n\
          kind of cold-data offload, citing Amazon Glacier and Facebook f4)"
    );
}
