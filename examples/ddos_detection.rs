//! DDoS detection and response (§5.4 + the §9 call for automation):
//! simulate a week containing the paper's first two leeching attacks,
//! rediscover them from the trace with the anomaly detector, and show the
//! countermeasure (ban) cutting the attack off.
//!
//! ```text
//! cargo run --release --example ddos_detection
//! ```

use std::sync::Arc;
use ubuntuone::analytics::ddos;
use ubuntuone::core::SimClock;
use ubuntuone::server::{Backend, BackendConfig};
use ubuntuone::trace::MemorySink;
use ubuntuone::workload::{Driver, WorkloadConfig};

fn main() {
    let clock = SimClock::new();
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig::default(),
        Arc::new(clock.clone()),
        sink.clone(),
    ));
    let cfg = WorkloadConfig {
        users: 700,
        days: 7, // covers the day-4 and day-5 attacks
        seed: 99,
        attacks: true,
        seed_files: 1.0,
        workers: 0,
    };
    let horizon = cfg.horizon();
    let report = Driver::new(cfg, Arc::clone(&backend), clock).run();
    println!(
        "simulated week: {} legitimate sessions, {} attack sessions, {} attack ops, {} bans",
        report.sessions_opened - report.attack_sessions,
        report.attack_sessions,
        report.attack_ops,
        report.users_banned
    );

    let records = sink.take_sorted();
    let detection = ddos::detect(&records, horizon, &ddos::DetectorConfig::default());

    println!("\nhourly session requests around the attacks (days 4-5):");
    for h in 96..144 {
        let sessions = detection.session_per_hour.get(h).copied().unwrap_or(0.0);
        let auth = detection.auth_per_hour.get(h).copied().unwrap_or(0.0);
        if sessions > 0.0 || auth > 0.0 {
            let bar = "#".repeat((sessions / 25.0) as usize);
            println!("  h{h:>3} sessions {sessions:>6.0} auth {auth:>6.0} {bar}");
        }
    }

    println!("\ndetected episodes:");
    for ep in &detection.episodes {
        println!(
            "  {} signal anomalous hours {}..{} (day {}), peak {:.1}x over baseline",
            ep.signal,
            ep.start_hour,
            ep.end_hour,
            ep.start_day(),
            ep.peak_multiplier
        );
    }
    let attacks = ddos::distinct_attacks(
        &detection
            .episodes
            .iter()
            .filter(|e| e.signal != "storage")
            .cloned()
            .collect::<Vec<_>>(),
    );
    println!("\ndistinct attacks: {}", attacks.len());
    for (start, end, peak) in &attacks {
        println!(
            "  attack on day {} ({} hours long, peak {:.1}x) — response: user banned, content deleted, activity decayed within the hour",
            start / 24,
            end - start + 1,
            peak
        );
    }
    assert!(
        attacks.len() >= 2,
        "both in-window attacks should be rediscovered"
    );
    println!("\nautomated detection rediscovered the injected attacks ✔");
}
