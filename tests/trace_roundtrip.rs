//! Trace pipeline integration: a simulated trace written to paper-format
//! logfiles, read back, merged and anonymized must support the same
//! analyses as the in-memory records — the fidelity Canonical's release
//! pipeline needed.

use std::sync::Arc;
use ubuntuone::analytics as ana;
use ubuntuone::core::SimClock;
use ubuntuone::server::{Backend, BackendConfig};
use ubuntuone::trace::{Anonymizer, DirSink, LogDirReader, MemorySink, TraceSink};
use ubuntuone::workload::{Driver, WorkloadConfig};

fn cfg() -> WorkloadConfig {
    WorkloadConfig {
        users: 250,
        days: 5,
        seed: 31337,
        attacks: false,
        seed_files: 0.6,
        workers: 0,
    }
}

/// A sink that tees into memory and a logfile directory at once.
struct Tee(Arc<MemorySink>, DirSink);

impl TraceSink for Tee {
    fn record(&self, rec: ubuntuone::trace::TraceRecord) {
        self.0.record(rec.clone());
        self.1.record(rec);
    }
    fn flush(&self) {
        self.1.flush();
    }
}

#[test]
fn logfile_round_trip_preserves_every_analysis_input() {
    let dir = std::env::temp_dir().join(format!("u1-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mem = Arc::new(MemorySink::new());
    let tee = Arc::new(Tee(mem.clone(), DirSink::create(&dir).unwrap()));

    let clock = SimClock::new();
    let backend = Arc::new(Backend::new(
        BackendConfig::default(),
        Arc::new(clock.clone()),
        tee,
    ));
    let workload = cfg();
    let horizon = workload.horizon();
    Driver::new(workload, Arc::clone(&backend), clock).run();
    backend.flush_trace();

    let direct = mem.take_sorted();
    let (from_disk, stats) = LogDirReader::new(&dir).read_all().unwrap();

    assert_eq!(stats.malformed, 0, "we wrote every line; all must parse");
    assert_eq!(direct.len(), from_disk.len());
    // The multisets agree record-by-record after the same stable sort.
    for (a, b) in direct.iter().zip(from_disk.iter()) {
        assert_eq!(a.t, b.t);
    }
    // Analyses computed from both sources agree exactly.
    let s1 = ana::summary::trace_summary(&direct, horizon);
    let s2 = ana::summary::trace_summary(&from_disk, horizon);
    assert_eq!(s1, s2);
    let d1 = ana::dedup::dedup_analysis(&direct);
    let d2 = ana::dedup::dedup_analysis(&from_disk);
    assert_eq!(d1.dedup_ratio, d2.dedup_ratio);
    assert_eq!(d1.unique_contents, d2.unique_contents);
    let u1 = ana::storage::update_analysis(&direct);
    let u2 = ana::storage::update_analysis(&from_disk);
    assert_eq!(u1, u2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn anonymization_preserves_all_aggregate_statistics() {
    let mem = Arc::new(MemorySink::new());
    let clock = SimClock::new();
    let backend = Arc::new(Backend::new(
        BackendConfig::default(),
        Arc::new(clock.clone()),
        mem.clone(),
    ));
    let workload = cfg();
    let horizon = workload.horizon();
    Driver::new(workload, Arc::clone(&backend), clock).run();

    let original = mem.take_sorted();
    let mut anonymized = original.clone();
    Anonymizer::new(0xDEAD_BEEF).anonymize_all(&mut anonymized);

    // Raw ids differ...
    let raw_users: std::collections::HashSet<u64> =
        original.iter().map(|r| r.payload.user().raw()).collect();
    let anon_users: std::collections::HashSet<u64> =
        anonymized.iter().map(|r| r.payload.user().raw()).collect();
    assert_ne!(raw_users, anon_users, "ids must be scrambled");
    assert_eq!(raw_users.len(), anon_users.len(), "…but stay distinct");

    // ...while every aggregate analysis is untouched: per-user correlation
    // survives the keyed bijection.
    let s1 = ana::summary::trace_summary(&original, horizon);
    let s2 = ana::summary::trace_summary(&anonymized, horizon);
    assert_eq!(s1.unique_users, s2.unique_users);
    assert_eq!(s1.unique_files, s2.unique_files);
    assert_eq!(s1.upload_bytes, s2.upload_bytes);

    let g1 = ana::users::traffic_inequality(&original);
    let g2 = ana::users::traffic_inequality(&anonymized);
    assert!((g1.upload_lorenz.gini - g2.upload_lorenz.gini).abs() < 1e-12);
    assert!((g1.top1_share - g2.top1_share).abs() < 1e-12);

    let b1 = ana::burstiness::interop_times(&original, ubuntuone::core::ApiOpKind::Upload);
    let b2 = ana::burstiness::interop_times(&anonymized, ubuntuone::core::ApiOpKind::Upload);
    let sum1: f64 = b1.iter().sum();
    let sum2: f64 = b2.iter().sum();
    assert_eq!(b1.len(), b2.len());
    assert!((sum1 - sum2).abs() < 1e-6);

    let dep1 = ana::dependencies::dependency_analysis(&original);
    let dep2 = ana::dependencies::dependency_analysis(&anonymized);
    assert_eq!(dep1.counts, dep2.counts);
}
