//! Property-based invariants of the metadata store and the upload state
//! machine under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::HashMap;
use ubuntuone::core::{ContentHash, NodeKind, SimTime, UserId};
use ubuntuone::metastore::{MetaStore, StoreConfig};

#[derive(Debug, Clone)]
enum Op {
    MakeFile {
        user: u8,
        name_seed: u8,
    },
    MakeDir {
        user: u8,
        name_seed: u8,
    },
    AttachContent {
        user: u8,
        pick: u8,
        content: u8,
        size: u16,
    },
    Unlink {
        user: u8,
        pick: u8,
    },
    Move {
        user: u8,
        pick: u8,
        name_seed: u8,
    },
    CreateUdf {
        user: u8,
        name_seed: u8,
    },
    GetDelta {
        user: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(user, name_seed)| Op::MakeFile { user, name_seed }),
        (any::<u8>(), any::<u8>()).prop_map(|(user, name_seed)| Op::MakeDir { user, name_seed }),
        (any::<u8>(), any::<u8>(), any::<u8>(), 1u16..10_000).prop_map(
            |(user, pick, content, size)| Op::AttachContent {
                user,
                pick,
                content,
                size
            }
        ),
        (any::<u8>(), any::<u8>()).prop_map(|(user, pick)| Op::Unlink { user, pick }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(user, pick, name_seed)| Op::Move {
            user,
            pick,
            name_seed
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(user, name_seed)| Op::CreateUdf { user, name_seed }),
        any::<u8>().prop_map(|user| Op::GetDelta { user }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the op sequence, the store never panics; generations are
    /// monotone; node counts equal live nodes; the content index's
    /// refcounts match the number of live file nodes per hash.
    #[test]
    fn metastore_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let store = MetaStore::new(StoreConfig::default());
        const USERS: u8 = 4;
        let now = SimTime::ZERO;
        let mut roots = Vec::new();
        for u in 0..USERS {
            let user = UserId::new(u as u64 + 1);
            store.create_user(user, now).unwrap();
            roots.push(store.get_root(user).unwrap().volume);
        }
        // Model state: live file nodes per user, hash refcounts.
        let mut live_nodes: Vec<Vec<(ubuntuone::core::NodeId, Option<ContentHash>)>> =
            vec![Vec::new(); USERS as usize];
        let mut refcounts: HashMap<ContentHash, i64> = HashMap::new();
        let mut last_gen: HashMap<u64, u64> = HashMap::new();

        for op in &ops {
            match op {
                Op::MakeFile { user, name_seed } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    let name = format!("f{name_seed}");
                    if let Ok(row) = store.make_node(uid, roots[u], None, NodeKind::File, &name, now) {
                        if !live_nodes[u].iter().any(|(n, _)| *n == row.node) {
                            live_nodes[u].push((row.node, row.content));
                            // Idempotent make may return an existing node
                            // with content attached.
                            if let Some(h) = row.content {
                                // Already counted.
                                let _ = h;
                            }
                        }
                    }
                }
                Op::MakeDir { user, name_seed } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    let _ = store.make_node(uid, roots[u], None, NodeKind::Directory, &format!("d{name_seed}"), now);
                }
                Op::AttachContent { user, pick, content, size } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    if live_nodes[u].is_empty() { continue; }
                    let idx = (*pick as usize) % live_nodes[u].len();
                    let (node, old) = live_nodes[u][idx];
                    // Content sizes must be consistent per hash for the
                    // index: derive size from the content id.
                    let hash = ContentHash::from_content_id(*content as u64 % 16);
                    let fixed_size = 100 + (*content as u64 % 16) * 10;
                    let _ = size;
                    if let Ok((row, _released)) = store.make_content(uid, roots[u], node, hash, fixed_size, now) {
                        if let Some(oldh) = old {
                            if oldh != hash {
                                *refcounts.entry(oldh).or_insert(0) -= 1;
                            }
                        }
                        if old != Some(hash) {
                            *refcounts.entry(hash).or_insert(0) += 1;
                        }
                        live_nodes[u][idx] = (node, row.content);
                    }
                }
                Op::Unlink { user, pick } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    if live_nodes[u].is_empty() { continue; }
                    let idx = (*pick as usize) % live_nodes[u].len();
                    let (node, hash) = live_nodes[u][idx];
                    if store.unlink(uid, roots[u], node, now).is_ok() {
                        live_nodes[u].remove(idx);
                        if let Some(h) = hash {
                            *refcounts.entry(h).or_insert(0) -= 1;
                        }
                    }
                }
                Op::Move { user, pick, name_seed } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    if live_nodes[u].is_empty() { continue; }
                    let idx = (*pick as usize) % live_nodes[u].len();
                    let (node, _) = live_nodes[u][idx];
                    let _ = store.move_node(uid, roots[u], node, None, &format!("m{name_seed}"), now);
                }
                Op::CreateUdf { user, name_seed } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    let _ = store.create_udf(uid, &format!("udf{name_seed}"), now);
                }
                Op::GetDelta { user } => {
                    let u = (user % USERS) as usize;
                    let uid = UserId::new(u as u64 + 1);
                    let (generation, _) = store.get_delta(uid, roots[u], 0).unwrap();
                    // Generations are monotone per volume.
                    let prev = last_gen.entry(roots[u].raw()).or_insert(0);
                    prop_assert!(generation >= *prev, "generation regressed");
                    *prev = generation;
                }
            }
        }

        // Final invariants.
        for u in 0..USERS as usize {
            let uid = UserId::new(u as u64 + 1);
            let (_, live) = store.get_from_scratch(uid, roots[u]).unwrap();
            let vol = store.list_volumes(uid).unwrap()
                .into_iter().find(|v| v.volume == roots[u]).unwrap();
            prop_assert_eq!(vol.node_count as usize, live.len(),
                "volume node_count matches live nodes");
            // Our model's files are a subset of the live nodes (dirs too).
            let model_files = &live_nodes[u];
            for (node, _) in model_files {
                prop_assert!(live.iter().any(|n| n.node == *node),
                    "model node {} must be live", node);
            }
        }
        // Dedup index: every positive refcount hash is reusable at its size;
        // every zero/negative is gone.
        for (hash, count) in &refcounts {
            let size = 100 + (0..16).find(|i| ContentHash::from_content_id(*i) == *hash).unwrap_or(0) * 10;
            let present = store.get_reusable_content(*hash, size).is_some();
            if *count > 0 {
                prop_assert!(present, "hash with {count} refs must be indexed");
            } else {
                prop_assert!(!present, "hash with {count} refs must be dropped");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The upload state machine never loses committed bytes: any interleaving
    /// of chunks, premature commits and cancels either ends with the full
    /// object stored or with no object at all — never a torn one.
    #[test]
    fn upload_state_machine_is_atomic(
        chunks in proptest::collection::vec(1u64..6_000_000, 1..8),
        premature_commits in 0usize..3,
        cancel_at in proptest::option::of(0usize..8),
    ) {
        use ubuntuone::server::{Backend, BackendConfig};
        use ubuntuone::server::api::UploadOutcome;
        use ubuntuone::trace::MemorySink;
        use std::sync::Arc;

        let backend = Arc::new(Backend::new(
            BackendConfig {
                auth: ubuntuone::auth::AuthConfig { transient_failure_rate: 0.0, token_ttl: None },
                ..Default::default()
            },
            Arc::new(ubuntuone::core::SimClock::new()),
            Arc::new(MemorySink::new()),
        ));
        let token = backend.register_user(UserId::new(1));
        let h = backend.open_session(token).unwrap();
        let v = backend.list_volumes(h.session).unwrap()[0].volume;
        let node = backend.make_node(h.session, v, None, NodeKind::File, "x.bin").unwrap();
        let total: u64 = chunks.iter().sum();
        let hash = ContentHash::from_content_id(total);

        let upload = match backend.begin_upload(h.session, v, node.node, hash, total).unwrap() {
            UploadOutcome::Started { upload } => upload,
            UploadOutcome::Deduplicated { .. } => return Ok(()),
        };

        let mut sent = 0u64;
        let mut cancelled = false;
        for (i, chunk) in chunks.iter().enumerate() {
            if Some(i) == cancel_at {
                backend.cancel_upload(h.session, upload).unwrap();
                cancelled = true;
                break;
            }
            if i < premature_commits && sent < total {
                // Premature commit must be refused, and must not destroy
                // progress.
                prop_assert!(backend.commit_upload(h.session, upload).is_err());
            }
            backend.upload_chunk(h.session, upload, *chunk, None).unwrap();
            sent += chunk;
        }
        if !cancelled {
            let committed = backend.commit_upload(h.session, upload).unwrap();
            prop_assert_eq!(committed.bytes_transferred, total);
            let meta = backend.blobs.head(hash).expect("object stored");
            prop_assert_eq!(meta.size, total, "no torn object");
        } else {
            prop_assert!(!backend.blobs.contains(hash), "cancelled upload leaves nothing");
            // The job is gone: further chunks are rejected.
            prop_assert!(backend.upload_chunk(h.session, upload, 1, None).is_err());
        }
    }
}
