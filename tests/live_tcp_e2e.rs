//! End-to-end integration over real TCP: the full client↔server protocol
//! stack, multi-device push sync, interrupted-connection behavior, and
//! abuse handling — the live-mode counterpart of the virtual-time
//! measurement pipeline.

use std::sync::Arc;
use ubuntuone::auth::AuthConfig;
use ubuntuone::client::{LocalEvent, SyncEngine, TcpTransport, Transport};
use ubuntuone::core::{NodeKind, RealClock, Sha1, UserId};
use ubuntuone::server::{tcpserver::TcpServer, Backend, BackendConfig};
use ubuntuone::trace::{MemorySink, Payload, SessionEvent};

fn live_backend() -> (Arc<Backend>, TcpServer, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig {
            auth: AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            store_real_bytes: true,
            ..Default::default()
        },
        Arc::new(RealClock::new()),
        sink.clone(),
    ));
    let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("bind");
    (backend, server, sink)
}

#[test]
fn upload_download_round_trip_preserves_bytes() {
    let (backend, server, _sink) = live_backend();
    let token = backend.register_user(UserId::new(1));
    let mut t = TcpTransport::connect(server.local_addr()).unwrap();
    t.authenticate(token).unwrap();
    let vols = t.list_volumes().unwrap();
    let root = vols[0].volume;

    // 3MB of structured data — spans multiple wire chunks.
    let data: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
    let hash = Sha1::digest(&data);
    let node = t.make_node(root, None, NodeKind::File, "big.bin").unwrap();
    let up = t
        .upload(root, node.node, hash, data.len() as u64, Some(data.clone()))
        .unwrap();
    assert!(!up.deduplicated);
    assert_eq!(up.bytes_sent, data.len() as u64);

    let (size, got_hash, got_data) = t.download(root, node.node).unwrap();
    assert_eq!(size, data.len() as u64);
    assert_eq!(got_hash, hash);
    assert_eq!(got_data.unwrap(), data, "bytes survive the full stack");
    t.close();
    server.shutdown();
}

#[test]
fn cross_user_dedup_over_tcp() {
    let (backend, server, _sink) = live_backend();
    let t1 = backend.register_user(UserId::new(1));
    let t2 = backend.register_user(UserId::new(2));
    let data = vec![42u8; 500_000];
    let hash = Sha1::digest(&data);

    let mut alice = TcpTransport::connect(server.local_addr()).unwrap();
    alice.authenticate(t1).unwrap();
    let av = alice.list_volumes().unwrap()[0].volume;
    let an = alice
        .make_node(av, None, NodeKind::File, "song.mp3")
        .unwrap();
    let up = alice
        .upload(av, an.node, hash, data.len() as u64, Some(data.clone()))
        .unwrap();
    assert!(!up.deduplicated);

    let mut bob = TcpTransport::connect(server.local_addr()).unwrap();
    bob.authenticate(t2).unwrap();
    let bv = bob.list_volumes().unwrap()[0].volume;
    let bn = bob.make_node(bv, None, NodeKind::File, "same.mp3").unwrap();
    let up = bob
        .upload(bv, bn.node, hash, data.len() as u64, Some(data))
        .unwrap();
    assert!(up.deduplicated, "second copy dedups server-side");
    assert_eq!(up.bytes_sent, 0);
    assert_eq!(backend.blobs.stats().objects, 1);
    server.shutdown();
}

#[test]
fn second_device_receives_push_over_tcp() {
    let (backend, server, _sink) = live_backend();
    let token = backend.register_user(UserId::new(7));
    let mut dev1 = SyncEngine::new(TcpTransport::connect(server.local_addr()).unwrap());
    let mut dev2 = SyncEngine::new(TcpTransport::connect(server.local_addr()).unwrap());
    dev1.connect(token).unwrap();
    dev2.connect(token).unwrap();
    let root = dev1.root_volume().unwrap();

    let content = b"push me".to_vec();
    dev1.handle_local_event(
        root,
        LocalEvent::FileWritten {
            name: "pushed.txt".into(),
            parent: None,
            hash: Sha1::digest(&content),
            size: content.len() as u64,
        },
    )
    .unwrap();

    // The push crosses broker + TCP asynchronously.
    let mut converged = false;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        dev2.handle_pushes().unwrap();
        if dev2
            .volume(root)
            .and_then(|v| v.find_by_name(None, "pushed.txt"))
            .is_some()
        {
            converged = true;
            break;
        }
    }
    assert!(converged, "device 2 never converged");
    assert!(dev2.stats.pushes_handled >= 1);
    server.shutdown();
}

#[test]
fn dropped_connection_closes_session_and_upload_resumes() {
    let (backend, server, sink) = live_backend();
    let token = backend.register_user(UserId::new(3));

    // Device connects and dies mid-upload (the NAT-cut behavior behind the
    // paper's 32%-under-1s sessions).
    {
        let mut t = TcpTransport::connect(server.local_addr()).unwrap();
        t.authenticate(token).unwrap();
        let root = t.list_volumes().unwrap()[0].volume;
        let _node = t.make_node(root, None, NodeKind::File, "half.bin").unwrap();
        // Abruptly drop the connection without closing the upload.
        t.close();
    }
    // Server notices EOF and closes the session.
    let mut closed = false;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        if backend.sessions.live_count() == 0 {
            closed = true;
            break;
        }
    }
    assert!(closed, "server must reap the dead session");

    // Reconnect: same token, fresh session; the file node is still there
    // and the upload completes now.
    let mut t = TcpTransport::connect(server.local_addr()).unwrap();
    t.authenticate(token).unwrap();
    let root = t.list_volumes().unwrap()[0].volume;
    let (_, nodes) = t.rescan_from_scratch(root).unwrap();
    let node = nodes
        .iter()
        .find(|n| n.name == "half.bin")
        .expect("node survived");
    let data = vec![9u8; 100_000];
    let hash = Sha1::digest(&data);
    let up = t
        .upload(root, node.node, hash, data.len() as u64, Some(data))
        .unwrap();
    assert!(!up.deduplicated);
    t.close();
    server.shutdown();

    std::thread::sleep(std::time::Duration::from_millis(50));
    // The trace saw both sessions open and close.
    let records = sink.take_sorted();
    let opens = records
        .iter()
        .filter(|r| {
            matches!(
                r.payload,
                Payload::Session {
                    event: SessionEvent::Open,
                    ..
                }
            )
        })
        .count();
    assert!(opens >= 2, "two sessions traced, got {opens}");
}

#[test]
fn banned_user_cannot_reconnect() {
    let (backend, server, _sink) = live_backend();
    let token = backend.register_user(UserId::new(66));
    let mut t = TcpTransport::connect(server.local_addr()).unwrap();
    t.authenticate(token).unwrap();
    backend.ban_user(UserId::new(66));

    let mut t2 = TcpTransport::connect(server.local_addr()).unwrap();
    assert!(t2.authenticate(token).is_err(), "token revoked after ban");
    server.shutdown();
}

#[test]
fn unauthenticated_requests_are_refused() {
    let (_backend, server, _sink) = live_backend();
    let mut t = TcpTransport::connect(server.local_addr()).unwrap();
    // No authenticate: data ops must be rejected.
    assert!(t.list_volumes().is_err());
    server.shutdown();
}
