//! The wire-tier parity contract: a closed-loop client fleet run over real
//! TCP sockets (epoll reactor, frame codec, send queues) must produce the
//! **byte-identical** back-end trace and the identical fleet report as the
//! same fleet run through the in-process [`DirectTransport`].
//!
//! This is the serving tier's equivalent of the driver's worker-count
//! determinism check: it proves the socket path adds transport, not
//! behavior. The lockstep fleet keeps one request in flight globally and
//! advances the shared virtual clock before every action, so any
//! divergence — a reordered RPC, an extra session-table touch, a
//! different upload part schedule — shows up as a hash mismatch.

use std::fmt::Write as _;
use std::sync::Arc;
use ubuntuone::auth::AuthConfig;
use ubuntuone::client::{DirectTransport, TcpTransport};
use ubuntuone::core::{Sha1, SimClock, UserId};
use ubuntuone::server::{Backend, BackendConfig, TcpServer};
use ubuntuone::trace::{csvline, MemorySink, TraceRecord};
use ubuntuone::workload::{fleet, FleetConfig, FleetReport};

/// Expected canonical trace SHA-1 for the golden fleet scenario below.
/// Both the in-process and the wire run must land exactly here; re-pin
/// only when the session model or the backend trace format deliberately
/// changes.
const GOLDEN_FLEET_SHA: &str = "eb00bac02fd1cd06f56abc12770d8fad5573949e";

fn golden_config() -> FleetConfig {
    FleetConfig {
        users: 12,
        sessions_per_user: 2,
        seed: 11,
    }
}

/// Fault-free measurement-mode backend under a shared virtual clock.
fn measurement_backend(clock: Arc<SimClock>) -> (Arc<Backend>, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig {
            auth: AuthConfig {
                transient_failure_rate: 0.0,
                token_ttl: None,
            },
            ..Default::default()
        },
        clock,
        sink.clone(),
    ));
    (backend, sink)
}

fn register(backend: &Backend, users: u32) -> Vec<ubuntuone::auth::Token> {
    (0..users)
        .map(|i| backend.register_user(UserId::new(u64::from(i) + 1)))
        .collect()
}

// Same canonicalization as `bench_throughput`: every trace line plus its
// origin/seq stamp, in `take_sorted()` order.
fn canonical_trace_hash(records: &[TraceRecord]) -> String {
    let mut sha = Sha1::new();
    let mut line = String::with_capacity(160);
    for r in records {
        line.clear();
        let _ = csvline::write_line(r, &mut line);
        let _ = writeln!(line, "|{}|{}", r.origin, r.seq);
        sha.update(line.as_bytes());
    }
    sha.finalize().to_hex()
}

fn run_direct(cfg: &FleetConfig) -> (FleetReport, String) {
    let clock = Arc::new(SimClock::new());
    let (backend, sink) = measurement_backend(clock.clone());
    let tokens = register(&backend, cfg.users);
    let report = fleet::run_lockstep(cfg, &clock, &tokens, |_| {
        DirectTransport::new(Arc::clone(&backend))
    });
    (report, canonical_trace_hash(&sink.take_sorted()))
}

fn run_wire(cfg: &FleetConfig) -> (FleetReport, String) {
    let clock = Arc::new(SimClock::new());
    let (backend, sink) = measurement_backend(clock.clone());
    let tokens = register(&backend, cfg.users);
    let server = TcpServer::start(Arc::clone(&backend), "127.0.0.1:0").expect("bind reactor");
    let addr = server.local_addr();
    let report = fleet::run_lockstep(cfg, &clock, &tokens, |_| {
        TcpTransport::connect(addr)
            .expect("loopback connect")
            .with_sparse_content()
    });
    server.shutdown();
    (report, canonical_trace_hash(&sink.take_sorted()))
}

#[test]
fn wire_fleet_reproduces_in_process_trace_byte_for_byte() {
    let cfg = golden_config();
    let (direct_report, direct_hash) = run_direct(&cfg);
    let (wire_report, wire_hash) = run_wire(&cfg);

    assert!(direct_report.ops_executed > 0, "fleet did real work");
    assert!(direct_report.uploads > 0, "fleet uploaded something");
    assert_eq!(
        direct_report, wire_report,
        "fleet reports diverged between in-process and wire transports"
    );
    assert_eq!(
        direct_hash, wire_hash,
        "canonical traces diverged between in-process and wire transports"
    );
    assert_eq!(
        direct_hash, GOLDEN_FLEET_SHA,
        "golden fleet trace moved — re-pin only for deliberate model changes"
    );
}

#[test]
fn wire_fleet_is_deterministic_across_runs() {
    let cfg = FleetConfig {
        users: 6,
        sessions_per_user: 1,
        seed: 23,
    };
    let (r1, h1) = run_wire(&cfg);
    let (r2, h2) = run_wire(&cfg);
    assert_eq!(r1, r2);
    assert_eq!(h1, h2);
}
