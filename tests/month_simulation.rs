//! Virtual-time integration: simulate a small population over a full
//! 30-day window and assert that the trace reproduces the paper's shapes —
//! the same checks the experiment harness reports, as hard assertions with
//! scale-tolerant bands.

use std::sync::Arc;
use ubuntuone::analytics as ana;
use ubuntuone::core::{ApiOpKind, SimClock};
use ubuntuone::server::{Backend, BackendConfig};
use ubuntuone::trace::MemorySink;
use ubuntuone::workload::{Driver, WorkloadConfig};

struct Run {
    records: Vec<ubuntuone::trace::TraceRecord>,
    horizon: ubuntuone::core::SimTime,
    backend: Arc<Backend>,
}

fn run_month() -> Run {
    run_cfg(WorkloadConfig {
        users: 320,
        days: 30,
        seed: 0xFEED,
        attacks: true,
        seed_files: 1.0,
        workers: 0,
    })
}

fn run_cfg(cfg: WorkloadConfig) -> Run {
    let clock = SimClock::new();
    let sink = Arc::new(MemorySink::new());
    let backend = Arc::new(Backend::new(
        BackendConfig::default(),
        Arc::new(clock.clone()),
        sink.clone(),
    ));
    let horizon = cfg.horizon();
    Driver::new(cfg, Arc::clone(&backend), clock).run();
    Run {
        records: sink.take_sorted(),
        horizon,
        backend,
    }
}

#[test]
fn month_trace_reproduces_paper_shapes() {
    let run = run_month();
    let records = &run.records;
    assert!(
        records.len() > 50_000,
        "substantial trace: {}",
        records.len()
    );

    // --- Table 3 basics -------------------------------------------------
    let summary = ana::summary::trace_summary(records, run.horizon);
    assert_eq!(summary.trace_days, 30);
    assert!(summary.sessions > 3_000);
    assert!(summary.transfer_ops > 1_500);
    let rw = summary.download_bytes as f64 / summary.upload_bytes.max(1) as f64;
    assert!((0.5..=2.5).contains(&rw), "overall R/W {rw} (paper 1.14)");

    // --- Fig. 2(b): small files dominate ops, huge files dominate bytes --
    let sizes = ana::storage::size_category_shares(records);
    assert!(
        sizes.upload_op_share[0] > 0.6,
        "tiny-file upload ops {} (paper 0.84)",
        sizes.upload_op_share[0]
    );
    assert!(
        sizes.upload_byte_share[4] > 0.35,
        "huge-file upload bytes {} (paper 0.79)",
        sizes.upload_byte_share[4]
    );

    // --- Fig. 4(a)/(b): dedup and file sizes -----------------------------
    let dedup = ana::dedup::dedup_analysis(records);
    assert!(
        (0.08..=0.35).contains(&dedup.dedup_ratio),
        "dedup ratio {} (paper 0.171)",
        dedup.dedup_ratio
    );
    let by_size = ana::storage::size_by_extension(records, &[]);
    assert!(
        by_size.under_1mb_fraction > 0.75,
        "files under 1MB {} (paper 0.90)",
        by_size.under_1mb_fraction
    );

    // --- §5.1: update overhead -------------------------------------------
    let upd = ana::storage::update_analysis(records);
    assert!(
        (0.04..=0.25).contains(&upd.update_op_fraction),
        "update op fraction {} (paper 0.1005)",
        upd.update_op_fraction
    );
    assert!(
        upd.update_traffic_fraction > upd.update_op_fraction,
        "updates cost more traffic than their op share (paper: 10% ops, 18.5% traffic)"
    );

    // --- Fig. 7(c): inequality -------------------------------------------
    let ineq = ana::users::traffic_inequality(records);
    assert!(
        ineq.upload_lorenz.gini > 0.75,
        "upload gini {} (paper 0.894)",
        ineq.upload_lorenz.gini
    );
    // At this population the top 1% is only ~3 users, so the share is a
    // high-variance statistic; the Gini above is the robust inequality
    // check. Paper value is 0.656 at 1.29M users.
    assert!(
        ineq.top1_share > 0.12,
        "top-1% share {} (paper 0.656)",
        ineq.top1_share
    );

    // --- Fig. 9: burstiness ----------------------------------------------
    let burst = ana::burstiness::burstiness(records, ApiOpKind::Upload);
    assert!(
        burst.cv > 2.0,
        "upload inter-op CV {} — not Poisson",
        burst.cv
    );
    if let Some(fit) = burst.fit {
        assert!(
            (0.4..=2.5).contains(&fit.alpha),
            "power-law alpha {}",
            fit.alpha
        );
    }

    // --- Fig. 8: transfer self-transitions dominate -----------------------
    let graph = ana::markov::transition_graph(records);
    let upload_self = graph.probability(ApiOpKind::Upload, ApiOpKind::Upload);
    assert!(upload_self > 0.01, "upload self-loop {upload_self}");

    // --- Figs. 12–13: RPC latency classes ---------------------------------
    let rpc = ana::rpc::rpc_analysis(records);
    let read = rpc.class_median(ubuntuone::core::RpcClass::Read);
    let write = rpc.class_median(ubuntuone::core::RpcClass::Write);
    let cascade = rpc.class_median(ubuntuone::core::RpcClass::Cascade);
    assert!(read < write && write < cascade, "{read} {write} {cascade}");
    assert!(cascade / read > 10.0, "cascade {}x read", cascade / read);
    let get_node = rpc.profile(ubuntuone::core::RpcKind::GetNode).unwrap();
    assert!(
        get_node.far_from_median > 0.01,
        "long tail present: {}",
        get_node.far_from_median
    );

    // --- Fig. 16: sessions -------------------------------------------------
    let sess = ana::sessions::session_analysis(records);
    assert!(
        (0.2..=0.45).contains(&sess.under_1s),
        "sub-second sessions {} (paper 0.32)",
        sess.under_1s
    );
    assert!(
        sess.under_8h > 0.93,
        "sessions under 8h {} (paper 0.97)",
        sess.under_8h
    );
    assert!(
        (0.02..=0.12).contains(&sess.active_fraction),
        "active sessions {} (paper 0.0557)",
        sess.active_fraction
    );
    assert!(
        sess.top20_op_share > 0.7,
        "top-20% op share {} (paper 0.967)",
        sess.top20_op_share
    );

    // --- Fig. 5: the three attacks are discoverable ------------------------
    let eps = ana::ddos::detect(records, run.horizon, &Default::default()).episodes;
    let control: Vec<_> = eps
        .iter()
        .filter(|e| e.signal != "storage")
        .cloned()
        .collect();
    let attacks = ana::ddos::distinct_attacks(&control);
    assert!(
        (2..=4).contains(&attacks.len()),
        "detected {} attacks (3 injected)",
        attacks.len()
    );
    let attack_days: Vec<u64> = attacks.iter().map(|(s, _, _)| *s as u64 / 24).collect();
    assert!(
        attack_days.contains(&4) || attack_days.contains(&5),
        "January attacks found: {attack_days:?}"
    );

    // --- Fig. 10/11: volumes ------------------------------------------------
    let volumes = run.backend.store.volume_snapshot();
    let contents = ana::volumes::volume_contents(&volumes);
    assert!(
        contents.files_dirs_pearson > 0.85,
        "files/dirs correlation {} (paper 0.998)",
        contents.files_dirs_pearson
    );
    let types = ana::volumes::volume_types(&volumes);
    assert!(
        (0.4..=0.7).contains(&types.users_with_udf),
        "users with UDF {} (paper 0.58)",
        types.users_with_udf
    );
    assert!(
        types.users_with_share < 0.06,
        "sharing users {} (paper 0.018)",
        types.users_with_share
    );

    // --- Fig. 15: auth diurnality -------------------------------------------
    let auth = ana::sessions::auth_activity(records, run.horizon);
    assert!(
        auth.diurnal_swing > 1.2,
        "auth day/night swing {} (paper 1.5-1.6)",
        auth.diurnal_swing
    );
    assert!(
        (0.005..=0.10).contains(&auth.auth_failure_fraction),
        "auth failures {} (paper 0.0276)",
        auth.auth_failure_fraction
    );
}

#[test]
fn trace_is_reproducible_bit_for_bit() {
    let cfg = WorkloadConfig {
        users: 120,
        days: 7,
        seed: 0xFACE,
        attacks: true,
        seed_files: 0.6,
        workers: 0,
    };
    let a = run_cfg(cfg.clone());
    let b = run_cfg(cfg);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()).step_by(1000) {
        assert_eq!(x, y);
    }
}
